// Package geomd implements the geographic multidimensional model (GeoMD) of
// Glorio & Trujillo's UML profile for geographic OLAP, which the paper's
// personalization rules construct from a plain MD model (Fig. 6): Base
// classes promoted to SpatialLevel classes carrying a geometry, and thematic
// Layer classes holding geographic data external to the analysis domain
// (airports, train lines, highways...).
//
// A geomd.Schema wraps an mdmodel.Schema plus its spatial decorations. The
// two personalization schema actions of the paper, BecomeSpatial and
// AddLayer, are methods here; package core invokes them when PRML rules
// fire.
package geomd

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"sdwp/internal/geom"
	"sdwp/internal/mdmodel"
)

// Layer is a thematic geographic layer external to the analysis domain
// (stereotype «Layer» in the GeoMD profile).
type Layer struct {
	Name string    `json:"name"`
	Geom geom.Type `json:"geometryType"`
}

// Schema is a GeoMD model: a multidimensional schema plus spatiality.
type Schema struct {
	MD *mdmodel.Schema
	// spatialLevels maps "Dimension.Level" to the geometry type added by
	// BecomeSpatial (stereotype «SpatialLevel»).
	spatialLevels map[string]geom.Type
	layers        []Layer
}

// New wraps a validated MD schema with no spatial decorations yet.
func New(md *mdmodel.Schema) *Schema {
	return &Schema{MD: md, spatialLevels: map[string]geom.Type{}}
}

// qualify joins a dimension and level name into the spatialLevels key.
func qualify(dim, level string) string { return dim + "." + level }

// BecomeSpatial promotes the level to a SpatialLevel with geometry type g —
// the paper's BecomeSpatial(Element, GeometricType) action. Promoting an
// already spatial level to the same type is idempotent; changing the type of
// a spatial level is an error (the instance data would no longer fit).
func (s *Schema) BecomeSpatial(dim, level string, g geom.Type) error {
	d := s.MD.Dimension(dim)
	if d == nil {
		return fmt.Errorf("geomd: BecomeSpatial: unknown dimension %q", dim)
	}
	if d.Level(level) == nil {
		return fmt.Errorf("geomd: BecomeSpatial: dimension %q has no level %q", dim, level)
	}
	if g < geom.TypePoint || g > geom.TypeCollection {
		return fmt.Errorf("geomd: BecomeSpatial: invalid geometric type %d", g)
	}
	key := qualify(dim, level)
	if prev, ok := s.spatialLevels[key]; ok && prev != g {
		return fmt.Errorf("geomd: BecomeSpatial: level %s is already spatial with type %s", key, prev)
	}
	s.spatialLevels[key] = g
	return nil
}

// AddLayer adds a thematic layer named name with geometry type g — the
// paper's AddLayer(String, GeometricType) action. Re-adding an existing
// layer with the same type is idempotent; with a different type it is an
// error.
func (s *Schema) AddLayer(name string, g geom.Type) error {
	if name == "" {
		return fmt.Errorf("geomd: AddLayer: empty layer name")
	}
	if g < geom.TypePoint || g > geom.TypeCollection {
		return fmt.Errorf("geomd: AddLayer: invalid geometric type %d", g)
	}
	for _, l := range s.layers {
		if l.Name == name {
			if l.Geom != g {
				return fmt.Errorf("geomd: AddLayer: layer %q already exists with type %s", name, l.Geom)
			}
			return nil
		}
	}
	s.layers = append(s.layers, Layer{Name: name, Geom: g})
	return nil
}

// SpatialType returns the geometry type of a spatial level and whether the
// level is spatial.
func (s *Schema) SpatialType(dim, level string) (geom.Type, bool) {
	g, ok := s.spatialLevels[qualify(dim, level)]
	return g, ok
}

// IsSpatial reports whether the level has been promoted.
func (s *Schema) IsSpatial(dim, level string) bool {
	_, ok := s.SpatialType(dim, level)
	return ok
}

// SpatialLevels returns the qualified names of all spatial levels, sorted.
func (s *Schema) SpatialLevels() []string {
	out := make([]string, 0, len(s.spatialLevels))
	for k := range s.spatialLevels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Layer returns the named layer and whether it exists.
func (s *Schema) Layer(name string) (Layer, bool) {
	for _, l := range s.layers {
		if l.Name == name {
			return l, true
		}
	}
	return Layer{}, false
}

// Layers returns the layers in the order they were added.
func (s *Schema) Layers() []Layer {
	return append([]Layer(nil), s.layers...)
}

// Clone returns a deep copy: the personalization engine clones the
// designer's base GeoMD schema per session before applying schema rules.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		MD:            s.MD.Clone(),
		spatialLevels: make(map[string]geom.Type, len(s.spatialLevels)),
	}
	for k, v := range s.spatialLevels {
		c.spatialLevels[k] = v
	}
	c.layers = append([]Layer(nil), s.layers...)
	return c
}

// schemaJSON is the serialized form.
type schemaJSON struct {
	MD            *mdmodel.Schema   `json:"md"`
	SpatialLevels map[string]string `json:"spatialLevels,omitempty"`
	Layers        []Layer           `json:"layers,omitempty"`
}

// MarshalJSON serializes the GeoMD schema with spatial types by name.
func (s *Schema) MarshalJSON() ([]byte, error) {
	out := schemaJSON{MD: s.MD, Layers: s.layers}
	if len(s.spatialLevels) > 0 {
		out.SpatialLevels = make(map[string]string, len(s.spatialLevels))
		for k, v := range s.spatialLevels {
			out.SpatialLevels[k] = v.String()
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a serialized GeoMD schema.
func (s *Schema) UnmarshalJSON(data []byte) error {
	var in schemaJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	s.MD = in.MD
	s.layers = in.Layers
	s.spatialLevels = make(map[string]geom.Type, len(in.SpatialLevels))
	for k, v := range in.SpatialLevels {
		t, err := geom.ParseType(v)
		if err != nil {
			return fmt.Errorf("geomd: level %s: %w", k, err)
		}
		s.spatialLevels[k] = t
	}
	return nil
}

// Render pretty-prints the GeoMD model in the textual shape of Fig. 6:
// the MD schema with SpatialLevel markers plus the layer blocks.
func (s *Schema) Render() string {
	var b strings.Builder
	b.WriteString(s.MD.Render())
	if len(s.spatialLevels) > 0 {
		b.WriteString("  SpatialLevels\n")
		for _, k := range s.SpatialLevels() {
			fmt.Fprintf(&b, "    %s: %s\n", k, s.spatialLevels[k])
		}
	}
	for _, l := range s.layers {
		fmt.Fprintf(&b, "  Layer %s: %s\n", l.Name, l.Geom)
	}
	return b.String()
}

// Diff lists the spatial decorations present in s but not in base, in a
// deterministic order. The experiment harness uses it to show what a schema
// rule did to the model (reproducing the Fig. 2 → Fig. 6 delta).
func (s *Schema) Diff(base *Schema) []string {
	var out []string
	for _, k := range s.SpatialLevels() {
		if _, ok := base.spatialLevels[k]; !ok {
			out = append(out, fmt.Sprintf("+SpatialLevel %s %s", k, s.spatialLevels[k]))
		}
	}
	for _, l := range s.layers {
		if _, ok := base.Layer(l.Name); !ok {
			out = append(out, fmt.Sprintf("+Layer %s %s", l.Name, l.Geom))
		}
	}
	return out
}

package webapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdwp/internal/core"
	"sdwp/internal/datagen"
	"sdwp/internal/obs"
	"sdwp/internal/prml"
)

// newObsServer is newTestServerOpts plus the engine handle, which the
// telemetry tests need for AddFact ingest during scrapes.
func newObsServer(t *testing.T, opts core.Options) (*httptest.Server, *core.Engine) {
	t.Helper()
	cfg := datagen.Default()
	cfg.Cities = 20
	cfg.Stores = 80
	cfg.Customers = 50
	cfg.Sales = 1500
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	users, err := datagen.NewUserStore(map[string]string{
		"alice": "RegionalSalesManager",
		"bob":   "Accountant",
	})
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(ds.Cube, users, opts)
	e.SetParam("threshold", prml.NumberVal(2))
	if _, err := e.AddRules(testRules); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	srv := httptest.NewServer(NewServer(e))
	t.Cleanup(srv.Close)
	return srv, e
}

func countBody(session string) map[string]any {
	return map[string]any{
		"session":    session,
		"fact":       "Sales",
		"aggregates": []map[string]any{{"agg": "COUNT"}},
	}
}

// postWithHeader is postJSON with request headers.
func postWithHeader(t *testing.T, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestTraceRoundTrip drives the tentpole end to end: a client-supplied
// X-Request-Id is adopted as the trace ID, echoed on the response, and
// the retained trace is served by GET /api/trace/{id} with the full
// lifecycle span tree.
func TestTraceRoundTrip(t *testing.T) {
	srv, _ := newObsServer(t, core.Options{TraceSampleRate: 1})
	sess := login(t, srv, "alice", "POINT(-3.7 40.4)")

	resp, body := postWithHeader(t, srv.URL+"/api/query", countBody(sess),
		map[string]string{"X-Request-Id": "round-trip-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %s (%s)", resp.Status, body)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "round-trip-1" {
		t.Fatalf("X-Request-Id = %q, want the client's ID echoed", got)
	}

	resp, body = getBody(t, srv.URL+"/api/trace/round-trip-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace lookup: %s (%s)", resp.Status, body)
	}
	var snap obs.TraceSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != "round-trip-1" || snap.DurNs <= 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	have := map[string]bool{}
	for _, sp := range snap.Spans {
		have[sp.Name] = true
	}
	for _, want := range []string{"compile", "admissionWait", "scan", "finalize"} {
		if !have[want] {
			t.Errorf("trace missing span %q: %+v", want, snap.Spans)
		}
	}

	resp, body = getBody(t, srv.URL+"/api/traces/recent")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "round-trip-1") {
		t.Fatalf("traces/recent: %s (%s)", resp.Status, body)
	}

	// Unknown trace ID: a 404 that still carries a request ID.
	resp, body = getBody(t, srv.URL+"/api/trace/never-seen")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: %s (%s)", resp.Status, body)
	}
}

// TestShardedTraceFanout checks the sharded scatter-gather path records
// one shardScan child per fact shard inside the shared scan span.
func TestShardedTraceFanout(t *testing.T) {
	srv, _ := newObsServer(t, core.Options{FactShards: 3, TraceSampleRate: 1})
	sess := login(t, srv, "alice", "POINT(-3.7 40.4)")
	resp, body := postWithHeader(t, srv.URL+"/api/query", countBody(sess),
		map[string]string{"X-Request-Id": "sharded-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %s (%s)", resp.Status, body)
	}
	_, body = getBody(t, srv.URL+"/api/trace/sharded-1")
	var snap obs.TraceSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	shardScans := 0
	for _, sp := range snap.Spans {
		if sp.Name != "scan" {
			continue
		}
		for _, c := range sp.Children {
			if c.Name == "shardScan" {
				shardScans++
			}
		}
	}
	if shardScans != 3 {
		t.Fatalf("scan span has %d shardScan children, want 3\n%s", shardScans, body)
	}
}

// TestErrorResponsesCarryRequestID checks satellite (b): validation 400s
// and admission-timeout 504s echo the request ID on header and body.
func TestErrorResponsesCarryRequestID(t *testing.T) {
	// Tracing disabled (the default): IDs are still generated and echoed.
	srv, _ := newObsServer(t, core.Options{})
	sess := login(t, srv, "bob", "POINT(-3.7 40.4)")

	bad := countBody(sess)
	bad["aggregates"] = []map[string]any{{"agg": "BOGUS"}}
	resp, body := postWithHeader(t, srv.URL+"/api/query", bad, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad agg: %s (%s)", resp.Status, body)
	}
	hdrID := resp.Header.Get("X-Request-Id")
	if hdrID == "" {
		t.Fatal("400 without X-Request-Id header")
	}
	var apiErr struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	if err := json.Unmarshal(body, &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.RequestID != hdrID {
		t.Fatalf("400 body requestId %q != header %q", apiErr.RequestID, hdrID)
	}

	resp, body = postWithHeader(t, srv.URL+"/api/query", countBody("no-such-session"),
		map[string]string{"X-Request-Id": "sess-miss-1"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: %s (%s)", resp.Status, body)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "sess-miss-1" {
		t.Fatalf("404 X-Request-Id = %q", got)
	}
	if !strings.Contains(string(body), `"requestId":"sess-miss-1"`) {
		t.Fatalf("404 body missing requestId: %s", body)
	}
}

// TestTimeout504CarriesTraceID checks the flagship correlation path: a
// query dropped past its admission deadline answers 504 with its trace
// ID echoed, and the trace — retained because it erred — shows the
// timed-out admission wait.
func TestTimeout504CarriesTraceID(t *testing.T) {
	srv, _ := newObsServer(t, core.Options{
		QueryTimeout:    time.Nanosecond,
		CoalesceWindow:  60 * time.Millisecond,
		TraceSampleRate: 1,
	})
	sess := login(t, srv, "alice", "POINT(-3.7 40.4)")
	resp, body := postWithHeader(t, srv.URL+"/api/query", countBody(sess),
		map[string]string{"X-Request-Id": "timeout-1"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %s, want 504 (%s)", resp.Status, body)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "timeout-1" {
		t.Fatalf("504 X-Request-Id = %q", got)
	}
	if !strings.Contains(string(body), `"requestId":"timeout-1"`) {
		t.Fatalf("504 body missing requestId: %s", body)
	}
	resp, body = getBody(t, srv.URL+"/api/trace/timeout-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace of timed-out query: %s (%s)", resp.Status, body)
	}
	var snap obs.TraceSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Error == "" {
		t.Fatalf("timed-out trace has no error: %s", body)
	}
}

// TestMetricsExposition checks GET /metrics: correct content type, the
// standard histograms and re-exported scheduler counters, every sample
// line well-formed.
func TestMetricsExposition(t *testing.T) {
	srv, _ := newObsServer(t, core.Options{})
	sess := login(t, srv, "alice", "POINT(-3.7 40.4)")
	for i := 0; i < 3; i++ {
		if resp, body := postJSON(t, srv.URL+"/api/query", countBody(sess)); resp.StatusCode != http.StatusOK {
			t.Fatalf("query: %s (%s)", resp.Status, body)
		}
	}
	resp, body := getBody(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE sdwp_query_duration_seconds histogram",
		`sdwp_query_duration_seconds_bucket{user="alice",le="+Inf"} 3`,
		"sdwp_query_queue_wait_seconds_count",
		"sdwp_batch_scan_seconds_count",
		"sdwp_batch_merge_seconds_count",
		"# TYPE sdwp_queries_submitted_total counter",
		"sdwp_queries_submitted_total 3",
		"sdwp_uptime_seconds",
		"sdwp_queue_depth",
		// Compressed-column storage gauges: maintained unconditionally,
		// so they are present (and non-zero for a loaded warehouse) even
		// when packed *execution* is disabled via SDWP_PACKED_COLUMNS=0.
		"# TYPE sdwp_packed_kernel_scans_total counter",
		"sdwp_packed_predicate_kernels_total",
		"sdwp_packed_columns 4",
		"sdwp_packed_bytes",
		"sdwp_packed_unpacked_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Errorf("malformed metrics line %q", line)
		}
	}
}

// TestMetricsScrapeUnderShardedLoad is the stress.sh race target: scrape
// /metrics and /api/stats continuously while sharded batches execute,
// AddFact ingest routes to shards, and the overload controller sheds part
// of the traffic — the lock-free histograms, the scheduler-counter
// collector, the shed/fair-share snapshot, and the trace ring all under
// fire. Every /api/stats snapshot must be internally consistent: the
// per-tenant shed breakdown sums to the shed total even while both move.
func TestMetricsScrapeUnderShardedLoad(t *testing.T) {
	srv, e := newObsServer(t, core.Options{
		FactShards:      3,
		CoalesceWindow:  time.Millisecond,
		TraceSampleRate: 0.5,
		MaxQueueDepth:   1, // any backlog is a breach: sheds are routine here
	})
	aliceSess := login(t, srv, "alice", "POINT(-3.7 40.4)")
	bobSess := login(t, srv, "bob", "POINT(-3.7 40.4)")

	deadline := time.Now().Add(300 * time.Millisecond)
	var wg sync.WaitGroup
	var sheds atomic.Int64
	fail := make(chan string, 32)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}

	for _, sess := range []string{aliceSess, bobSess} {
		wg.Add(1)
		go func(sess string) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, body := postJSON(t, srv.URL+"/api/query", countBody(sess))
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					sheds.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						report("429 without Retry-After header")
						return
					}
				default:
					report("query: %s (%s)", resp.Status, body)
					return
				}
			}
		}(sess)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			if err := e.AddFact("Sales",
				map[string]int32{"Store": int32(i % 80), "Customer": int32(i % 50),
					"Product": 0, "Time": 0},
				map[string]float64{"UnitSales": 1}); err != nil {
				report("AddFact: %v", err)
				return
			}
		}
	}()
	for _, path := range []string{"/metrics", "/api/traces/recent"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, body := getBody(t, srv.URL+path)
				if resp.StatusCode != http.StatusOK {
					report("%s: %s (%s)", path, resp.Status, body)
					return
				}
			}
		}(path)
	}
	// The torn-read scraper: every stats snapshot's shed breakdown must sum
	// to its shed total, even with sheds landing between scrapes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int64
		for time.Now().Before(deadline) {
			resp, body := getBody(t, srv.URL+"/api/stats")
			if resp.StatusCode != http.StatusOK {
				report("/api/stats: %s (%s)", resp.Status, body)
				return
			}
			var st struct {
				ShedTotal    int64                       `json:"shedTotal"`
				ShedByTenant map[string]map[string]int64 `json:"shedByTenant"`
			}
			if err := json.Unmarshal(body, &st); err != nil {
				report("/api/stats decode: %v", err)
				return
			}
			var sum int64
			for _, byReason := range st.ShedByTenant {
				for _, n := range byReason {
					sum += n
				}
			}
			if sum != st.ShedTotal {
				report("torn snapshot: shedByTenant sums to %d, shedTotal %d", sum, st.ShedTotal)
				return
			}
			if st.ShedTotal < last {
				report("shedTotal went backwards: %d after %d", st.ShedTotal, last)
				return
			}
			last = st.ShedTotal
		}
	}()
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if sheds.Load() == 0 {
		t.Log("no sheds this run; the snapshot invariant still held throughout")
		return
	}
	// The shed counters made it to the exposition surface too.
	_, body := getBody(t, srv.URL+"/metrics")
	for _, want := range []string{"sdwp_shed_total{", "sdwp_shed_rate", "sdwp_tenant_fair_share{"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q after shed traffic", want)
		}
	}
}

// TestOverload429RetryAfter pins the overload HTTP contract: a query shed
// by the scheduler answers 429 with a Retry-After header of at least one
// whole second, on both the single and the batch endpoint, and the queued
// query it was shed behind still completes.
func TestOverload429RetryAfter(t *testing.T) {
	srv, _ := newObsServer(t, core.Options{
		CoalesceWindow: 60 * time.Millisecond, // holds the first query queued
		MaxQueueDepth:  1,
	})
	sess := login(t, srv, "alice", "POINT(-3.7 40.4)")

	first := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, srv.URL+"/api/query", countBody(sess))
		first <- resp.StatusCode
	}()
	// Wait until the first query is queued (inside the coalescing window).
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, body := getBody(t, srv.URL+"/api/stats")
		var st struct {
			QueueDepth int `json:"queueDepth"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.QueueDepth >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, srv.URL+"/api/query", countBody(sess))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query: %s, want 429 (%s)", resp.Status, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Errorf("Retry-After = %q, want integer seconds in [1, 60]", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Errorf("429 body does not say why: %s", body)
	}

	// The batch endpoint sheds with the same contract.
	batch := map[string]any{"session": sess, "queries": []map[string]any{
		{"fact": "Sales", "aggregates": []map[string]any{{"agg": "COUNT"}}},
	}}
	resp, body = postJSON(t, srv.URL+"/api/query/batch", batch)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch: %s, want 429 (%s)", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("batch 429 without Retry-After header")
	}

	// The query that was shed *behind* still completes normally.
	if got := <-first; got != http.StatusOK {
		t.Errorf("first (queued) query: %d, want 200", got)
	}
}

// TestTenantCostEndpoints drives mixed-tenant traffic and checks the
// cost-accounting surface end to end: per-tenant accounts on
// GET /api/tenants, heavy-query profiles on GET /api/queries/top, and
// the sdwp_tenant_* / sdwp_query_profile_* series on /metrics.
func TestTenantCostEndpoints(t *testing.T) {
	srv, _ := newObsServer(t, core.Options{})
	alice := login(t, srv, "alice", "POINT(-3.7 40.4)")
	bob := login(t, srv, "bob", "POINT(-3.7 40.4)")

	groupBody := func(sess string) map[string]any {
		return map[string]any{
			"session":    sess,
			"fact":       "Sales",
			"groupBy":    []map[string]string{{"dimension": "Store", "level": "City"}},
			"aggregates": []map[string]any{{"measure": "UnitSales", "agg": "SUM"}},
		}
	}
	for i := 0; i < 3; i++ {
		if resp, body := postJSON(t, srv.URL+"/api/query", groupBody(alice)); resp.StatusCode != http.StatusOK {
			t.Fatalf("alice query: %s (%s)", resp.Status, body)
		}
	}
	if resp, body := postJSON(t, srv.URL+"/api/query", countBody(bob)); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob query: %s (%s)", resp.Status, body)
	}

	resp, body := getBody(t, srv.URL+"/api/tenants")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/tenants: %s (%s)", resp.Status, body)
	}
	var tenants []obs.TenantStat
	if err := json.Unmarshal(body, &tenants); err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 {
		t.Fatalf("tenants = %d (%s), want alice and bob", len(tenants), body)
	}
	byName := map[string]obs.TenantStat{}
	for _, ts := range tenants {
		byName[ts.Tenant] = ts
	}
	if a := byName["alice"]; a.Queries != 3 || a.Cost.FactsScanned <= 0 {
		t.Errorf("alice account %+v", a)
	}
	if b := byName["bob"]; b.Queries != 1 {
		t.Errorf("bob account %+v", b)
	}

	resp, body = getBody(t, srv.URL+"/api/queries/top?n=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/queries/top: %s (%s)", resp.Status, body)
	}
	var top []obs.QueryProfile
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 { // two distinct fingerprints
		t.Fatalf("profiles = %d (%s), want 2", len(top), body)
	}
	if top[0].Count <= 0 || top[0].Fingerprint == "" || top[0].MeanCost.FactsScanned <= 0 {
		t.Errorf("top profile %+v", top[0])
	}

	resp, body = getBody(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	out := string(body)
	for _, want := range []string{
		`sdwp_tenant_queries_total{tenant="alice"} 3`,
		`sdwp_tenant_queries_total{tenant="bob"} 1`,
		`sdwp_tenant_facts_scanned_total{tenant="alice"}`,
		`sdwp_tenant_cpu_seconds_total{tenant="alice"}`,
		`sdwp_tenant_artifact_bytes_total{tenant=`,
		`sdwp_tenant_cache_credit_seconds_total{tenant=`,
		"sdwp_query_profile_count 2",
		"sdwp_query_profile_records_total 4",
		"sdwp_query_profile_evictions_total 0",
		`sdwp_query_queue_wait_seconds_count{user="alice"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestGoRuntimeMetrics checks the runtime telemetry satellite: goroutine
// and heap gauges, the GC pause histogram, and the build-info series.
func TestGoRuntimeMetrics(t *testing.T) {
	srv, _ := newObsServer(t, core.Options{})
	_, body := getBody(t, srv.URL+"/metrics")
	out := string(body)
	for _, want := range []string{
		"# TYPE sdwp_go_goroutines gauge",
		"sdwp_go_goroutines ",
		"# TYPE sdwp_go_heap_bytes gauge",
		"sdwp_go_heap_bytes ",
		"# TYPE sdwp_go_gc_pause_seconds histogram",
		`sdwp_go_gc_pause_seconds_bucket{le="+Inf"}`,
		"sdwp_go_gc_pause_seconds_count",
		"# TYPE sdwp_build_info gauge",
		`sdwp_build_info{`,
		`goversion="go`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTracesRecentFilters checks the ?user=, ?min_ms= and ?limit= query
// parameters on GET /api/traces/recent.
func TestTracesRecentFilters(t *testing.T) {
	srv, _ := newObsServer(t, core.Options{TraceSampleRate: 1})
	alice := login(t, srv, "alice", "POINT(-3.7 40.4)")
	bob := login(t, srv, "bob", "POINT(-3.7 40.4)")
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, srv.URL+"/api/query", countBody(alice)); resp.StatusCode != http.StatusOK {
			t.Fatalf("alice query: %s (%s)", resp.Status, body)
		}
	}
	if resp, body := postJSON(t, srv.URL+"/api/query", countBody(bob)); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob query: %s (%s)", resp.Status, body)
	}

	fetch := func(query string) []obs.TraceSnapshot {
		t.Helper()
		resp, body := getBody(t, srv.URL+"/api/traces/recent"+query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("traces/recent%s: %s (%s)", query, resp.Status, body)
		}
		var out []obs.TraceSnapshot
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if all := fetch(""); len(all) != 3 {
		t.Fatalf("unfiltered traces = %d, want 3", len(all))
	}
	aliceOnly := fetch("?user=alice")
	if len(aliceOnly) != 2 {
		t.Fatalf("user=alice traces = %d, want 2", len(aliceOnly))
	}
	for _, ts := range aliceOnly {
		if ts.User != "alice" {
			t.Errorf("user filter leaked trace for %q", ts.User)
		}
	}
	if got := fetch("?user=alice&limit=1"); len(got) != 1 {
		t.Errorf("limit=1 returned %d traces", len(got))
	}
	if got := fetch("?min_ms=999999"); len(got) != 0 {
		t.Errorf("min_ms filter kept %d traces, want 0", len(got))
	}
	if got := fetch("?user=nobody"); len(got) != 0 {
		t.Errorf("unknown user returned %d traces", len(got))
	}
	// Bad parameters are 400s.
	for _, q := range []string{"?limit=0", "?n=x", "?min_ms=-1"} {
		if resp, _ := getBody(t, srv.URL+"/api/traces/recent"+q); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("traces/recent%s: %s, want 400", q, resp.Status)
		}
	}
}

package webapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sdwp/internal/core"
	"sdwp/internal/datagen"
	"sdwp/internal/prml"
	"sdwp/internal/qsched"
)

const testRules = `
Rule:addSpatiality When SessionStart do
  If (SUS.DecisionMaker.dm2role.name = 'RegionalSalesManager') then
    AddLayer('Airport', POINT)
    BecomeSpatial(MD.Sales.Store.geometry, POINT)
  endIf
endWhen

Rule:5kmStores When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen

Rule:IntAirportCity When SpatialSelection(GeoMD.Store.City,
    Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km) do
  SetContent(SUS.DecisionMaker.dm2airportcity.degree,
    SUS.DecisionMaker.dm2airportcity.degree + 1)
endWhen
`

func newTestServer(t *testing.T) (*httptest.Server, *datagen.Dataset) {
	t.Helper()
	return newTestServerOpts(t, core.Options{})
}

func newTestServerOpts(t *testing.T, opts core.Options) (*httptest.Server, *datagen.Dataset) {
	t.Helper()
	cfg := datagen.Default()
	cfg.Cities = 20
	cfg.Stores = 80
	cfg.Customers = 50
	cfg.Sales = 1500
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	users, err := datagen.NewUserStore(map[string]string{
		"alice": "RegionalSalesManager",
		"bob":   "Accountant",
	})
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(ds.Cube, users, opts)
	e.SetParam("threshold", prml.NumberVal(2))
	if _, err := e.AddRules(testRules); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	srv := httptest.NewServer(NewServer(e))
	t.Cleanup(srv.Close)
	return srv, ds
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func login(t *testing.T, srv *httptest.Server, user, locWKT string) string {
	t.Helper()
	resp, body := postJSON(t, srv.URL+"/api/login", map[string]string{
		"user": user, "locationWKT": locWKT,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login %s: %s (%s)", user, resp.Status, body)
	}
	var lr struct {
		Session    string   `json:"session"`
		SchemaDiff []string `json:"schemaDiff"`
	}
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Session == "" {
		t.Fatal("empty session token")
	}
	return lr.Session
}

func TestHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, body := getBody(t, srv.URL+"/api/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %s %s", resp.Status, body)
	}
}

func TestLoginPersonalizesSchema(t *testing.T) {
	srv, ds := newTestServer(t)
	loc := ds.CityLocs[0]
	wkt := fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y)

	resp, body := postJSON(t, srv.URL+"/api/login", map[string]string{"user": "alice", "locationWKT": wkt})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login: %s %s", resp.Status, body)
	}
	var lr struct {
		Session    string   `json:"session"`
		SchemaDiff []string `json:"schemaDiff"`
	}
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	// The manager's login reports the Fig. 6 delta.
	joined := strings.Join(lr.SchemaDiff, "|")
	if !strings.Contains(joined, "+Layer Airport POINT") ||
		!strings.Contains(joined, "+SpatialLevel Store.Store POINT") {
		t.Fatalf("schemaDiff = %v", lr.SchemaDiff)
	}

	// Schema endpoint returns the personalized model.
	resp, body = getBody(t, srv.URL+"/api/schema?session="+lr.Session)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schema: %s", resp.Status)
	}
	if !strings.Contains(string(body), "Airport") {
		t.Errorf("schema JSON missing Airport layer: %s", body)
	}
	// Text rendering too.
	resp, body = getBody(t, srv.URL+"/api/schema?format=text&session="+lr.Session)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Layer Airport: POINT") {
		t.Errorf("schema text: %s %s", resp.Status, body)
	}

	// The accountant's diff is empty.
	bobTok := login(t, srv, "bob", wkt)
	_ = bobTok
}

func TestQueryPersonalizedVsBaseline(t *testing.T) {
	srv, ds := newTestServer(t)
	loc := ds.CityLocs[1]
	tok := login(t, srv, "alice", fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y))

	q := map[string]any{
		"session":    tok,
		"fact":       "Sales",
		"groupBy":    []map[string]string{{"dimension": "Store", "level": "City"}},
		"aggregates": []map[string]string{{"measure": "UnitSales", "agg": "SUM"}},
	}
	resp, body := postJSON(t, srv.URL+"/api/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %s %s", resp.Status, body)
	}
	var personalized struct {
		Rows         []struct{ Groups []string } `json:"rows"`
		MatchedFacts int                         `json:"matchedFacts"`
	}
	if err := json.Unmarshal(body, &personalized); err != nil {
		t.Fatal(err)
	}

	q["baseline"] = true
	resp, body = postJSON(t, srv.URL+"/api/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline query: %s %s", resp.Status, body)
	}
	var baseline struct {
		MatchedFacts int `json:"matchedFacts"`
	}
	if err := json.Unmarshal(body, &baseline); err != nil {
		t.Fatal(err)
	}
	if personalized.MatchedFacts >= baseline.MatchedFacts {
		t.Errorf("personalized %d !< baseline %d", personalized.MatchedFacts, baseline.MatchedFacts)
	}
}

// TestQueryBatchEndpoint drives /api/query/batch: a personalized and a
// baseline variant of the same query answered in one shared scan must
// match the results of the one-at-a-time /api/query endpoint exactly.
func TestQueryBatchEndpoint(t *testing.T) {
	srv, ds := newTestServer(t)
	loc := ds.CityLocs[1]
	tok := login(t, srv, "alice", fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y))

	spec := map[string]any{
		"fact":       "Sales",
		"groupBy":    []map[string]string{{"dimension": "Store", "level": "City"}},
		"aggregates": []map[string]string{{"measure": "UnitSales", "agg": "SUM"}},
	}
	baseSpec := map[string]any{
		"fact":       "Sales",
		"groupBy":    []map[string]string{{"dimension": "Store", "level": "City"}},
		"aggregates": []map[string]string{{"measure": "UnitSales", "agg": "SUM"}},
		"baseline":   true,
	}
	resp, body := postJSON(t, srv.URL+"/api/query/batch", map[string]any{
		"session": tok,
		"queries": []map[string]any{spec, baseSpec},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %s %s", resp.Status, body)
	}
	var batch struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 {
		t.Fatalf("batch returned %d results, want 2", len(batch.Results))
	}

	// Each batch entry must match the single-query answer. The cost vector
	// is excluded: it reflects how the query executed (the batch charges
	// shared-artifact shares), not what it answered.
	for i, single := range []map[string]any{spec, baseSpec} {
		q := map[string]any{"session": tok}
		for k, v := range single {
			q[k] = v
		}
		resp, one := postJSON(t, srv.URL+"/api/query", q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single %d: %s %s", i, resp.Status, one)
		}
		if stripCost(t, one) != stripCost(t, batch.Results[i]) {
			t.Errorf("batch result %d differs from single query:\nbatch:  %s\nsingle: %s",
				i, batch.Results[i], one)
		}
	}

	// Error paths: unknown session, empty batch, invalid query.
	resp, _ = postJSON(t, srv.URL+"/api/query/batch", map[string]any{
		"session": "nope", "queries": []map[string]any{spec}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %s", resp.Status)
	}
	resp, _ = postJSON(t, srv.URL+"/api/query/batch", map[string]any{
		"session": tok, "queries": []map[string]any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: %s", resp.Status)
	}
	resp, _ = postJSON(t, srv.URL+"/api/query/batch", map[string]any{
		"session": tok,
		"queries": []map[string]any{{
			"fact":       "Sales",
			"aggregates": []map[string]string{{"agg": "BOGUS"}},
		}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad aggregation: %s", resp.Status)
	}
	oversized := make([]map[string]any, qsched.DefaultMaxBatch+1)
	for i := range oversized {
		oversized[i] = spec
	}
	resp, _ = postJSON(t, srv.URL+"/api/query/batch", map[string]any{
		"session": tok, "queries": oversized})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: %s", resp.Status)
	}
}

func TestSelectFiresTrackingRule(t *testing.T) {
	srv, ds := newTestServer(t)
	loc := ds.CityLocs[0]
	tok := login(t, srv, "alice", fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y))

	resp, body := postJSON(t, srv.URL+"/api/select", map[string]string{
		"session":   tok,
		"target":    "GeoMD.Store.City",
		"predicate": "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select: %s %s", resp.Status, body)
	}
	var sr struct {
		Selected   []string `json:"selected"`
		RulesFired []string `json:"rulesFired"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Selected) == 0 {
		t.Fatal("nothing selected")
	}
	if len(sr.RulesFired) != 1 || sr.RulesFired[0] != "IntAirportCity" {
		t.Fatalf("rulesFired = %v", sr.RulesFired)
	}
	// Selected entries are city display names.
	for _, name := range sr.Selected {
		if !strings.HasPrefix(name, "City") {
			t.Errorf("selected name %q is not a city descriptor", name)
		}
	}

	// Profile shows the acquired degree.
	resp, body = getBody(t, srv.URL+"/api/profile?user=alice")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: %s", resp.Status)
	}
	if !strings.Contains(string(body), `"degree":1`) {
		t.Errorf("profile missing degree: %s", body)
	}
}

func TestRulesEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, body := getBody(t, srv.URL+"/api/rules")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rules get: %s", resp.Status)
	}
	if !strings.Contains(string(body), "Rule:addSpatiality") {
		t.Errorf("rules text missing: %s", body)
	}
	// Register a new rule.
	resp, body = postJSON(t, srv.URL+"/api/rules", map[string]string{
		"source": "Rule:extra When SessionEnd do SetContent(SUS.DecisionMaker.name, 'bye') endWhen",
	})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "extra") {
		t.Fatalf("rules post: %s %s", resp.Status, body)
	}
	// Broken rules rejected with 422.
	resp, _ = postJSON(t, srv.URL+"/api/rules", map[string]string{"source": "Rule:x When"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("broken rules: %s", resp.Status)
	}
}

func TestLayersEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, body := getBody(t, srv.URL+"/api/layers")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("layers: %s", resp.Status)
	}
	var layers []struct {
		Name    string `json:"name"`
		Type    string `json:"type"`
		Objects int    `json:"objects"`
	}
	if err := json.Unmarshal(body, &layers); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, l := range layers {
		found[l.Name] = l.Objects > 0
	}
	for _, want := range []string{"Airport", "Train", "Hospital", "Highway"} {
		if !found[want] {
			t.Errorf("layer %s missing or empty (got %v)", want, layers)
		}
	}
}

func TestLogout(t *testing.T) {
	srv, ds := newTestServer(t)
	loc := ds.CityLocs[0]
	tok := login(t, srv, "alice", fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y))
	resp, _ := postJSON(t, srv.URL+"/api/logout", map[string]string{"session": tok})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("logout: %s", resp.Status)
	}
	// The token is gone.
	resp, _ = getBody(t, srv.URL+"/api/schema?session="+tok)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stale session: %s", resp.Status)
	}
	resp, _ = postJSON(t, srv.URL+"/api/logout", map[string]string{"session": tok})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double logout: %s", resp.Status)
	}
}

func TestErrorPaths(t *testing.T) {
	srv, ds := newTestServer(t)
	loc := ds.CityLocs[0]
	wkt := fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y)

	// Wrong methods.
	resp, _ := getBody(t, srv.URL+"/api/login")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET login: %s", resp.Status)
	}
	// Missing user.
	resp, _ = postJSON(t, srv.URL+"/api/login", map[string]string{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty login: %s", resp.Status)
	}
	// Bad WKT.
	resp, _ = postJSON(t, srv.URL+"/api/login", map[string]string{"user": "alice", "locationWKT": "POINT(oops"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad wkt: %s", resp.Status)
	}
	// Login without location fails the location rule (422).
	resp, _ = postJSON(t, srv.URL+"/api/login", map[string]string{"user": "alice"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("no-location login: %s", resp.Status)
	}
	// Unknown fields rejected.
	resp, _ = postJSON(t, srv.URL+"/api/login", map[string]string{"user": "alice", "bogus": "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %s", resp.Status)
	}
	// Unknown session on query/select.
	resp, _ = postJSON(t, srv.URL+"/api/query", map[string]any{"session": "nope", "fact": "Sales",
		"aggregates": []map[string]string{{"agg": "COUNT"}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session query: %s", resp.Status)
	}
	// Bad aggregation name.
	tok := login(t, srv, "alice", wkt)
	resp, _ = postJSON(t, srv.URL+"/api/query", map[string]any{"session": tok, "fact": "Sales",
		"aggregates": []map[string]string{{"agg": "MEDIAN"}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad agg: %s", resp.Status)
	}
	// Bad query (unknown fact).
	resp, _ = postJSON(t, srv.URL+"/api/query", map[string]any{"session": tok, "fact": "Ghost",
		"aggregates": []map[string]string{{"agg": "COUNT"}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown fact: %s", resp.Status)
	}
	// Bad selection.
	resp, _ = postJSON(t, srv.URL+"/api/select", map[string]string{"session": tok,
		"target": "SUS.DecisionMaker", "predicate": "true"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad select target: %s", resp.Status)
	}
	// Unknown profile.
	resp, _ = getBody(t, srv.URL+"/api/profile?user=ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown profile: %s", resp.Status)
	}
}

func TestGeoJSONEndpoint(t *testing.T) {
	srv, ds := newTestServer(t)
	loc := ds.CityLocs[0]
	tok := login(t, srv, "alice", fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y))

	resp, body := getBody(t, srv.URL+"/api/geojson?session="+tok)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("geojson: %s %s", resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/geo+json" {
		t.Errorf("content type = %q", ct)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []struct {
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(body, &fc); err != nil {
		t.Fatal(err)
	}
	if fc.Type != "FeatureCollection" || len(fc.Features) == 0 {
		t.Fatalf("geojson shape: %s", body)
	}
	kinds := map[string]int{}
	for _, f := range fc.Features {
		k, _ := f.Properties["kind"].(string)
		kinds[k]++
	}
	if kinds["layer"] == 0 || kinds["member"] == 0 || kinds["userLocation"] != 1 {
		t.Fatalf("feature kinds = %v", kinds)
	}

	// Selected-only and simplified variants.
	resp, selBody := getBody(t, srv.URL+"/api/geojson?selected=1&session="+tok)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selected geojson: %s", resp.Status)
	}
	if len(selBody) >= len(body) {
		t.Error("selected-only export should be smaller")
	}
	resp, _ = getBody(t, srv.URL+"/api/geojson?simplify=0.01&session="+tok)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simplified geojson: %s", resp.Status)
	}
	// Errors.
	resp, _ = getBody(t, srv.URL+"/api/geojson?session=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %s", resp.Status)
	}
	resp, _ = getBody(t, srv.URL+"/api/geojson?simplify=-1&session="+tok)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad simplify: %s", resp.Status)
	}
}

func TestQueryFiltersOrderLimitOverHTTP(t *testing.T) {
	srv, ds := newTestServer(t)
	loc := ds.CityLocs[0]
	tok := login(t, srv, "bob", fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y))

	// Top-3 product families by units, cities over 1M population only.
	resp, body := postJSON(t, srv.URL+"/api/query", map[string]any{
		"session":    tok,
		"fact":       "Sales",
		"baseline":   true,
		"groupBy":    []map[string]string{{"dimension": "Product", "level": "Family"}},
		"aggregates": []map[string]string{{"measure": "UnitSales", "agg": "SUM"}},
		"filters": []map[string]any{{
			"dimension": "Store", "level": "City", "attr": "population",
			"op": ">", "value": 1000000,
		}},
		"orderBy": map[string]any{"agg": 0, "desc": true},
		"limit":   3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %s %s", resp.Status, body)
	}
	var res struct {
		Rows []struct {
			Groups []string  `json:"groups"`
			Values []float64 `json:"values"`
		} `json:"rows"`
		MatchedFacts int `json:"matchedFacts"`
		ScannedFacts int `json:"scannedFacts"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("limit ignored: %d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Values[0] > res.Rows[i-1].Values[0] {
			t.Fatalf("not descending: %+v", res.Rows)
		}
	}
	if res.MatchedFacts >= res.ScannedFacts {
		t.Fatalf("population filter had no effect: %d of %d", res.MatchedFacts, res.ScannedFacts)
	}
	// Unknown filter operator rejected.
	resp, _ = postJSON(t, srv.URL+"/api/query", map[string]any{
		"session":    tok,
		"fact":       "Sales",
		"aggregates": []map[string]string{{"agg": "COUNT"}},
		"filters": []map[string]any{{
			"dimension": "Store", "level": "City", "attr": "population",
			"op": "~", "value": 1,
		}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op: %s", resp.Status)
	}
}

func TestRuleRemovalOverHTTP(t *testing.T) {
	srv, ds := newTestServer(t)
	loc := ds.CityLocs[0]
	wkt := fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y)

	// Remove the schema rule; new manager sessions lose the Airport layer.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/api/rules",
		strings.NewReader(`{"name":"addSpatiality"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete rule: %s", resp.Status)
	}
	resp2, body := postJSON(t, srv.URL+"/api/login", map[string]string{"user": "alice", "locationWKT": wkt})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("login: %s %s", resp2.Status, body)
	}
	if strings.Contains(string(body), "Airport") {
		t.Errorf("removed rule still fired: %s", body)
	}
	// Unknown rule → 404; missing name → 400.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/api/rules", strings.NewReader(`{"name":"ghost"}`))
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown rule: %s", resp.Status)
	}
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/api/rules", strings.NewReader(`{}`))
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing name: %s", resp.Status)
	}
}

func TestMapSVGEndpoint(t *testing.T) {
	srv, ds := newTestServer(t)
	loc := ds.CityLocs[0]
	tok := login(t, srv, "alice", fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y))

	resp, body := getBody(t, srv.URL+"/api/map.svg?session="+tok)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map.svg: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("content type = %q", ct)
	}
	if !strings.HasPrefix(string(body), "<svg") || !strings.Contains(string(body), "</svg>") {
		t.Errorf("not an SVG: %.80s", body)
	}
	resp, body2 := getBody(t, srv.URL+"/api/map.svg?width=200&session="+tok)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body2), `width="200"`) {
		t.Errorf("custom width: %s %.80s", resp.Status, body2)
	}
	resp, _ = getBody(t, srv.URL+"/api/map.svg?width=-3&session="+tok)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad width: %s", resp.Status)
	}
	resp, _ = getBody(t, srv.URL+"/api/map.svg?session=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %s", resp.Status)
	}
}

// TestStatsEndpoint checks the scheduler observability surface: after a
// mix of fresh and repeated queries plus a sharing-heavy batch, /api/stats
// reports the submissions, cache traffic (under the doorkeeper admission
// policy: the first request of a fingerprint is never cached), a coalesce
// ratio, and the cross-query sharing ratios.
// stripCost re-renders a Result JSON body without its "cost" field: cost
// is attribution (it varies with batching, caching, and CPU timing), not
// part of the logical answer these equality checks pin.
func stripCost(t *testing.T, raw []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "cost")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestStatsEndpoint(t *testing.T) {
	srv, ds := newTestServerOpts(t, core.Options{ResultCacheBytes: 1 << 20})
	loc := ds.CityLocs[0]
	tok := login(t, srv, "alice", fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y))

	spec := map[string]any{
		"session":    tok,
		"fact":       "Sales",
		"aggregates": []map[string]string{{"agg": "COUNT"}},
	}
	var answers []string
	for i := 0; i < 3; i++ { // 1st doorkept, 2nd cached, 3rd a hit
		resp, body := postJSON(t, srv.URL+"/api/query", spec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %s %s", i, resp.Status, body)
		}
		answers = append(answers, stripCost(t, body))
	}
	for i := 1; i < len(answers); i++ {
		if answers[i] != answers[0] {
			t.Fatalf("cached answer %d differs:\n%s\nvs\n%s", i, answers[i], answers[0])
		}
	}

	// A batch of queries sharing one grouping: one shared scan whose
	// group-key column is decoded once for all three.
	tile := func(limit int) map[string]any {
		return map[string]any{
			"fact":       "Sales",
			"groupBy":    []map[string]string{{"dimension": "Store", "level": "City"}},
			"aggregates": []map[string]string{{"agg": "SUM", "measure": "UnitSales"}},
			"limit":      limit,
		}
	}
	resp, body := postJSON(t, srv.URL+"/api/query/batch", map[string]any{
		"session": tok,
		"queries": []map[string]any{tile(1), tile(2), tile(3)},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %s %s", resp.Status, body)
	}

	resp, body = getBody(t, srv.URL+"/api/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %s %s", resp.Status, body)
	}
	var st struct {
		Submitted       int64   `json:"submitted"`
		CacheHits       int64   `json:"cacheHits"`
		CacheDoorkept   int64   `json:"cacheDoorkept"`
		Executed        int64   `json:"executed"`
		FactScans       int64   `json:"factScans"`
		CoalesceRatio   float64 `json:"coalesceRatio"`
		QueueDepth      int     `json:"queueDepth"`
		GroupKeySets    int64   `json:"groupKeySets"`
		GroupKeyCols    int64   `json:"groupKeyCols"`
		GroupKeySharing float64 `json:"groupKeySharing"`
		Packed          struct {
			Columns       int            `json:"columns"`
			PackedBytes   int64          `json:"packedBytes"`
			UnpackedBytes int64          `json:"unpackedBytes"`
			BitsPerColumn map[string]int `json:"bitsPerColumn"`
		} `json:"packed"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats JSON: %v (%s)", err, body)
	}
	if st.Submitted != 6 {
		t.Errorf("submitted = %d, want 6", st.Submitted)
	}
	if st.CacheHits != 1 {
		t.Errorf("cacheHits = %d, want 1", st.CacheHits)
	}
	if st.CacheDoorkept == 0 {
		t.Error("cacheDoorkept = 0, want the first-seen fingerprints doorkept")
	}
	if st.Executed != 5 || st.FactScans != 3 {
		t.Errorf("executed/factScans = %d/%d, want 5/3", st.Executed, st.FactScans)
	}
	if st.GroupKeySets != 3 || st.GroupKeyCols != 1 {
		t.Errorf("groupKeySets/groupKeyCols = %d/%d, want 3/1", st.GroupKeySets, st.GroupKeyCols)
	}
	if st.GroupKeySharing <= 1 {
		t.Errorf("groupKeySharing = %.1f, want > 1", st.GroupKeySharing)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queueDepth = %d, want 0 at rest", st.QueueDepth)
	}
	// Compressed-column storage stats (maintained regardless of the
	// execution toggle): the Sales fact packs its four dim-key columns at
	// a fraction of the int32 footprint.
	if st.Packed.Columns != 4 {
		t.Errorf("packed.columns = %d, want 4", st.Packed.Columns)
	}
	if st.Packed.PackedBytes <= 0 || st.Packed.PackedBytes >= st.Packed.UnpackedBytes {
		t.Errorf("packed.packedBytes = %d, want in (0, %d)",
			st.Packed.PackedBytes, st.Packed.UnpackedBytes)
	}
	for _, col := range []string{"Sales/Store", "Sales/Customer", "Sales/Product", "Sales/Time"} {
		if w := st.Packed.BitsPerColumn[col]; w < 1 || w > 32 {
			t.Errorf("packed.bitsPerColumn[%s] = %d, want 1..32", col, w)
		}
	}

	resp, _ = postJSON(t, srv.URL+"/api/stats", map[string]any{})
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST stats: %s, want 405", resp.Status)
	}
}

// TestBatchCapConfigurable checks that core.Options.MaxBatchQueries drives
// the /api/query/batch limit and that over-limit requests get a
// descriptive 400.
func TestBatchCapConfigurable(t *testing.T) {
	srv, ds := newTestServerOpts(t, core.Options{MaxBatchQueries: 2})
	loc := ds.CityLocs[0]
	tok := login(t, srv, "bob", fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y))

	spec := map[string]any{
		"fact":       "Sales",
		"aggregates": []map[string]string{{"agg": "COUNT"}},
	}
	resp, body := postJSON(t, srv.URL+"/api/query/batch", map[string]any{
		"session": tok, "queries": []map[string]any{spec, spec}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("at-limit batch: %s %s", resp.Status, body)
	}
	resp, body = postJSON(t, srv.URL+"/api/query/batch", map[string]any{
		"session": tok, "queries": []map[string]any{spec, spec, spec}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-limit batch: %s, want 400", resp.Status)
	}
	msg := string(body)
	for _, want := range []string{"3 queries", "max 2", "MaxBatchQueries"} {
		if !strings.Contains(msg, want) {
			t.Errorf("over-limit error %q missing %q", msg, want)
		}
	}
}

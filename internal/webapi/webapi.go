// Package webapi exposes the personalization engine over HTTP+JSON — the
// web deployment shape the paper inherits from Web engineering: logging in
// starts a personalized analysis session (firing the user's rules), and the
// session token then scopes schema inspection, OLAP queries and spatial
// selections.
//
// Endpoints (all JSON):
//
//	POST /api/login    {user, locationWKT?}            → {session}
//	POST /api/logout   {session}                       → {ok}
//	GET  /api/schema?session=...                       → personalized GeoMD
//	POST /api/query    {session, fact, groupBy, aggregates, baseline?}
//	POST /api/query/batch {session, queries: [{fact, ...}, ...]}
//	                                                   → {results} (one shared scan)
//	POST /api/select   {session, target, predicate}    → selection result
//	GET  /api/profile?user=...                         → SUS profile instance
//	GET  /api/rules                                    → registered rules (canonical PRML)
//	POST /api/rules    {source}                        → register rules
//	GET  /api/layers                                   → geographic catalog
//	GET  /api/geojson?session=...[&selected=1][&simplify=0.01]
//	                                                   → personalized map (GeoJSON)
//	GET  /api/stats                                    → query-scheduler counters
//	                                                     (coalesce ratio, cache hit rate, queue depth,
//	                                                     filter-mask / group-key sharing ratios,
//	                                                     negative-cache, admission-timeout and
//	                                                     doorkeeper counters; shed counters, per-tenant
//	                                                     fair shares and the live auto-tuned knob
//	                                                     values, snapshotted under one scheduler lock;
//	                                                     on a sharded engine also shard count, per-shard
//	                                                     fact balance, shard-scan fan-out and
//	                                                     artifact-cache hit rates)
//	GET  /api/trace/{id}                               → one retained query-lifecycle trace (span tree)
//	GET  /api/traces/recent[?n=20][&user=...][&min_ms=...]
//	                                                   → recently retained traces, newest first,
//	                                                     optionally filtered by tenant and latency floor
//	GET  /api/tenants                                  → per-tenant cost accounts, heaviest first
//	                                                     (queries, cache hits, facts scanned, CPU,
//	                                                     artifact bytes, sharing/caching credits)
//	GET  /api/queries/top[?n=20]                       → heavy-query profiles by decay-weighted cost
//	                                                     (count, mean/p99 latency, mean cost vector,
//	                                                     last trace ID)
//	GET  /metrics                                      → Prometheus text exposition (latency histograms
//	                                                     + scheduler, tenant-cost and Go runtime
//	                                                     telemetry)
//	GET  /api/healthz                                  → liveness
//
// Query endpoints correlate with traces via the X-Request-Id header: a
// client-supplied value is adopted as the trace ID, otherwise one is
// generated, and either way it is echoed on the response — success and
// error alike (admission timeouts included), so a 504 can still be looked
// up under /api/trace/{id}. Error bodies carry the same ID as requestId.
//
// Query-path status contract: 400 invalid query, 404 unknown session,
// 429 shed by the overload controller (over-share tenant under
// MaxQueueDepth/TargetQueueWait breach; the response carries a
// Retry-After header in whole seconds derived from the observed queue
// drain rate), 503 engine shutting down, 504 dropped at the admission
// deadline (QueryTimeout). See docs/OPERATIONS.md.
package webapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sdwp/internal/core"
	"sdwp/internal/cube"
	"sdwp/internal/export"
	"sdwp/internal/geom"
	"sdwp/internal/obs"
	"sdwp/internal/prml"
	"sdwp/internal/qsched"
)

// Server serves the personalization API for one engine.
type Server struct {
	engine *core.Engine
	mux    *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*core.Session // token → session
}

// NewServer builds a Server and its routes.
func NewServer(e *core.Engine) *Server {
	s := &Server{
		engine:   e,
		mux:      http.NewServeMux(),
		sessions: map[string]*core.Session{},
	}
	s.mux.HandleFunc("/api/login", s.handleLogin)
	s.mux.HandleFunc("/api/logout", s.handleLogout)
	s.mux.HandleFunc("/api/schema", s.handleSchema)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/query/batch", s.handleQueryBatch)
	s.mux.HandleFunc("/api/select", s.handleSelect)
	s.mux.HandleFunc("/api/profile", s.handleProfile)
	s.mux.HandleFunc("/api/rules", s.handleRules)
	s.mux.HandleFunc("/api/layers", s.handleLayers)
	s.mux.HandleFunc("/api/geojson", s.handleGeoJSON)
	s.mux.HandleFunc("/api/map.svg", s.handleMapSVG)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /api/traces/recent", s.handleTracesRecent)
	s.mux.HandleFunc("GET /api/tenants", s.handleTenants)
	s.mux.HandleFunc("GET /api/queries/top", s.handleQueriesTop)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/api/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// --- helpers ---

type apiError struct {
	Error string `json:"error"`
	// RequestID is the request's correlation ID (the X-Request-Id response
	// header), present on the query endpoints so a failed query — a 504
	// admission timeout in particular — can be looked up at /api/trace/{id}.
	RequestID string `json:"requestId,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	// The request ID was stamped on the response header by startTrace
	// before any handler work; echo it in the body too ("" elsewhere).
	writeJSON(w, status, apiError{
		Error:     fmt.Sprintf(format, args...),
		RequestID: w.Header().Get("X-Request-Id"),
	})
}

// startTrace gives the request its correlation ID — adopting the client's
// X-Request-Id when present, generating one otherwise — stamps it on the
// response header before any body is written (so success, validation 400
// and timeout 504 responses all carry it), and, when tracing is enabled,
// starts a lifecycle trace that rides the returned context into the
// scheduler. The returned trace is nil when tracing is off; every use
// below is nil-safe.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request) (context.Context, *obs.Trace) {
	tr := s.engine.Tracer().Start(r.Header.Get("X-Request-Id"))
	id := tr.ID()
	if id == "" {
		id = obs.RequestID(r.Header.Get("X-Request-Id"))
	}
	w.Header().Set("X-Request-Id", id)
	return obs.NewContext(r.Context(), tr), tr
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is not recoverable
	}
	return hex.EncodeToString(b[:])
}

func (s *Server) session(token string) *core.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[token]
}

// --- handlers ---

type loginRequest struct {
	User        string `json:"user"`
	LocationWKT string `json:"locationWKT,omitempty"`
}

type loginResponse struct {
	Session    string   `json:"session"`
	SchemaDiff []string `json:"schemaDiff,omitempty"`
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req loginRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.User == "" {
		writeErr(w, http.StatusBadRequest, "user is required")
		return
	}
	var loc geom.Geometry
	if req.LocationWKT != "" {
		g, err := geom.ParseWKT(req.LocationWKT)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad locationWKT: %v", err)
			return
		}
		loc = g
	}
	sess, err := s.engine.StartSession(req.User, loc)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "session start failed: %v", err)
		return
	}
	token := newToken()
	s.mu.Lock()
	s.sessions[token] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, loginResponse{
		Session:    token,
		SchemaDiff: sess.Schema().Diff(s.engine.Cube().Schema()),
	})
}

type logoutRequest struct {
	Session string `json:"session"`
}

func (s *Server) handleLogout(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req logoutRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess := s.session(req.Session)
	if sess == nil {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	if err := s.engine.EndSession(sess); err != nil {
		writeErr(w, http.StatusInternalServerError, "session end failed: %v", err)
		return
	}
	s.mu.Lock()
	delete(s.sessions, req.Session)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	sess := s.session(r.URL.Query().Get("session"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, sess.Schema().Render())
		return
	}
	writeJSON(w, http.StatusOK, sess.Schema())
}

type queryRequest struct {
	Session string `json:"session"`
	querySpec
}

// querySpec is the wire form of one OLAP query (shared by /api/query and
// the entries of /api/query/batch).
type querySpec struct {
	Fact       string        `json:"fact"`
	GroupBy    []levelRef    `json:"groupBy,omitempty"`
	Aggregates []measureAgg  `json:"aggregates"`
	Filters    []attrFilter  `json:"filters,omitempty"`
	OrderBy    *cube.OrderBy `json:"orderBy,omitempty"`
	Limit      int           `json:"limit,omitempty"`
	Baseline   bool          `json:"baseline,omitempty"` // bypass personalization
}

type levelRef struct {
	Dimension string `json:"dimension"`
	Level     string `json:"level"`
}

type measureAgg struct {
	Measure string `json:"measure,omitempty"`
	Agg     string `json:"agg"`
}

type attrFilter struct {
	Dimension string `json:"dimension"`
	Level     string `json:"level"`
	Attr      string `json:"attr"`
	Op        string `json:"op"` // =, <>, <, <=, >, >=
	Value     any    `json:"value"`
}

// filterOps maps the wire operators to cube filter operators.
var filterOps = map[string]cube.FilterOp{
	"=": cube.OpEq, "<>": cube.OpNe, "<": cube.OpLt,
	"<=": cube.OpLe, ">": cube.OpGt, ">=": cube.OpGe,
}

// toCubeQuery translates a wire query into a cube query.
func (qs querySpec) toCubeQuery() (cube.Query, error) {
	q := cube.Query{Fact: qs.Fact, OrderBy: qs.OrderBy, Limit: qs.Limit}
	for _, g := range qs.GroupBy {
		q.GroupBy = append(q.GroupBy, cube.LevelRef{Dimension: g.Dimension, Level: g.Level})
	}
	for _, a := range qs.Aggregates {
		agg, err := cube.ParseAgg(a.Agg)
		if err != nil {
			return cube.Query{}, err
		}
		q.Aggregates = append(q.Aggregates, cube.MeasureAgg{Measure: a.Measure, Agg: agg})
	}
	for _, f := range qs.Filters {
		op, ok := filterOps[f.Op]
		if !ok {
			return cube.Query{}, fmt.Errorf("unknown filter operator %q", f.Op)
		}
		q.Filters = append(q.Filters, cube.AttrFilter{
			LevelRef: cube.LevelRef{Dimension: f.Dimension, Level: f.Level},
			Attr:     f.Attr, Op: op, Value: f.Value,
		})
	}
	return q, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	ctx, tr := s.startTrace(w, r)
	var req queryRequest
	if !decodeBody(w, r, &req) {
		tr.Finish(errBadRequest)
		return
	}
	sess := s.session(req.Session)
	if sess == nil {
		tr.Finish(errUnknownSession)
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	q, err := req.toCubeQuery()
	if err != nil {
		tr.Finish(err)
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The request context rides into the scheduler — carrying the trace —
	// so a client that hangs up unblocks the handler, and
	// core.Options.QueryTimeout (or an upstream context deadline) drops
	// the query from the admission queue instead of executing it late.
	var res *cube.Result
	if req.Baseline {
		res, err = sess.QueryBaselineCtx(ctx, q)
	} else {
		res, err = sess.QueryCtx(ctx, q)
	}
	if err != nil {
		tr.Finish(err) // idempotent: queries that reached the scheduler are already finished
		setRetryAfter(w, err)
		writeErr(w, queryErrStatus(err), "query failed: %v", err)
		return
	}
	tr.Finish(nil)
	writeJSON(w, http.StatusOK, res)
}

// Sentinel errors for trace retention on requests rejected before they
// reach the scheduler (the response body carries the detailed message).
var (
	errBadRequest     = errors.New("bad request body")
	errUnknownSession = errors.New("unknown session")
)

// queryErrStatus maps a query-path error to its HTTP status: a closed
// scheduler is a server lifecycle condition (shutdown in progress), an
// admission timeout is the scheduler dropping stale queued work at the
// deadline, and an overload shed is the scheduler refusing an over-share
// tenant up front — none of these is a client mistake.
func queryErrStatus(err error) int {
	switch {
	case errors.Is(err, qsched.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, qsched.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, qsched.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

// setRetryAfter stamps the Retry-After header (whole seconds, rounded up,
// never 0) when the error carries the scheduler's drain-rate-derived
// retry hint. Must run before the status line is written.
func setRetryAfter(w http.ResponseWriter, err error) {
	var oe *qsched.OverloadError
	if !errors.As(err, &oe) {
		return
	}
	secs := int((oe.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

type batchQueryRequest struct {
	Session string      `json:"session"`
	Queries []querySpec `json:"queries"`
}

type batchQueryResponse struct {
	Results []*cube.Result `json:"results"`
}

// handleQueryBatch answers many queries of one session in a single shared
// scan per fact table (cube.ExecuteBatch): the wire shape of a dashboard
// refreshing all of its tiles at once.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	ctx, tr := s.startTrace(w, r)
	var req batchQueryRequest
	if !decodeBody(w, r, &req) {
		tr.Finish(errBadRequest)
		return
	}
	sess := s.session(req.Session)
	if sess == nil {
		tr.Finish(errUnknownSession)
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	if len(req.Queries) == 0 {
		tr.Finish(errBadRequest)
		writeErr(w, http.StatusBadRequest, "batch needs at least one query")
		return
	}
	// The cap bounds the per-request scan memory (each query holds its own
	// partial aggregation tables) and is the same limit the scheduler uses
	// for one coalesced shared scan: core.Options.MaxBatchQueries.
	if max := s.engine.MaxBatchQueries(); len(req.Queries) > max {
		tr.Finish(errBadRequest)
		writeErr(w, http.StatusBadRequest,
			"batch has %d queries, max %d (configurable via core.Options.MaxBatchQueries)",
			len(req.Queries), max)
		return
	}
	qs := make([]cube.Query, len(req.Queries))
	baseline := make([]bool, len(req.Queries))
	for i, spec := range req.Queries {
		q, err := spec.toCubeQuery()
		if err != nil {
			tr.Finish(err)
			writeErr(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		qs[i] = q
		baseline[i] = spec.Baseline
	}
	// All queries of the HTTP batch share one trace (one request, one
	// span tree); the first of them to complete freezes its duration.
	results, err := sess.QueryBatchCtx(ctx, qs, baseline)
	if err != nil {
		tr.Finish(err)
		setRetryAfter(w, err)
		writeErr(w, queryErrStatus(err), "batch query failed: %v", err)
		return
	}
	tr.Finish(nil)
	writeJSON(w, http.StatusOK, batchQueryResponse{Results: results})
}

type selectRequest struct {
	Session   string `json:"session"`
	Target    string `json:"target"`
	Predicate string `json:"predicate"`
}

type selectResponse struct {
	Selected   []string `json:"selected"`
	RulesFired []string `json:"rulesFired,omitempty"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req selectRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess := s.session(req.Session)
	if sess == nil {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	res, err := sess.SpatialSelect(req.Target, req.Predicate)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "selection failed: %v", err)
		return
	}
	resp := selectResponse{RulesFired: res.RulesFired}
	for _, inst := range res.Selected {
		resp.Selected = append(resp.Selected, s.instanceName(inst))
	}
	writeJSON(w, http.StatusOK, resp)
}

// instanceName renders a selected instance as its display name.
func (s *Server) instanceName(inst prml.Instance) string {
	c := s.engine.Cube()
	switch inst.Kind {
	case prml.InstMember:
		if dd := c.Dimension(inst.Dimension); dd != nil {
			if ld := dd.Level(inst.Level); ld != nil && int(inst.Index) < ld.Len() {
				return ld.Name(inst.Index)
			}
		}
	case prml.InstLayerObject:
		if ld := c.Layer(inst.Layer); ld != nil && int(inst.Index) < ld.Len() {
			return ld.Name(inst.Index)
		}
	}
	return inst.String()
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	user := r.URL.Query().Get("user")
	if s.engine.Users().Get(user) == nil {
		writeErr(w, http.StatusNotFound, "unknown user %q", user)
		return
	}
	// Serialize just this user through the store's JSON form.
	data, err := json.Marshal(s.engine.Users())
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "profile marshal: %v", err)
		return
	}
	var all map[string]json.RawMessage
	if err := json.Unmarshal(data, &all); err != nil {
		writeErr(w, http.StatusInternalServerError, "profile unmarshal: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(all[user])
}

type rulesRequest struct {
	Source string `json:"source,omitempty"` // POST: PRML source to register
	Name   string `json:"name,omitempty"`   // DELETE: rule to remove
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, prml.Format(s.engine.Rules()...))
	case http.MethodPost:
		var req rulesRequest
		if !decodeBody(w, r, &req) {
			return
		}
		rules, err := s.engine.AddRules(req.Source)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "rules rejected: %v", err)
			return
		}
		names := make([]string, len(rules))
		for i, rl := range rules {
			names[i] = rl.Name
		}
		writeJSON(w, http.StatusOK, map[string]any{"added": names})
	case http.MethodDelete:
		var req rulesRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if req.Name == "" {
			writeErr(w, http.StatusBadRequest, "name is required")
			return
		}
		if !s.engine.RemoveRule(req.Name) {
			writeErr(w, http.StatusNotFound, "no rule named %q", req.Name)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"removed": req.Name})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

type layerInfo struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	Objects int    `json:"objects"`
}

func (s *Server) handleLayers(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	c := s.engine.Cube()
	var out []layerInfo
	for _, name := range c.Layers() {
		ld := c.Layer(name)
		out = append(out, layerInfo{Name: name, Type: ld.Type().String(), Objects: ld.Len()})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGeoJSON renders the session's personalized map: the layers and
// spatial levels of their schema plus selection states (see package
// export).
func (s *Server) handleGeoJSON(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	sess := s.session(r.URL.Query().Get("session"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	opts := export.Options{SelectedOnly: r.URL.Query().Get("selected") == "1"}
	if tol := r.URL.Query().Get("simplify"); tol != "" {
		v, err := strconv.ParseFloat(tol, 64)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, "bad simplify tolerance %q", tol)
			return
		}
		opts.SimplifyTolerance = v
	}
	fc, err := export.Session(sess, opts)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "export failed: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/geo+json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(fc)
}

// handleMapSVG renders the session's personalized map as an SVG image.
func (s *Server) handleMapSVG(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	sess := s.session(r.URL.Query().Get("session"))
	if sess == nil {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	opts := export.SVGOptions{}
	if ws := r.URL.Query().Get("width"); ws != "" {
		v, err := strconv.Atoi(ws)
		if err != nil || v <= 0 || v > 8192 {
			writeErr(w, http.StatusBadRequest, "bad width %q", ws)
			return
		}
		opts.Width = v
	}
	svg, err := export.SessionSVG(sess, opts)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "render failed: %v", err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(svg))
}

// handleStats serves the query scheduler's counters: how many queries
// coalesced into how few shared scans, result-cache effectiveness
// (including doorkeeper admissions and the negative cache), how much
// cross-query stage work batch scans shared (filterMaskSharing,
// predicateSharing — per-filter bitmaps AND-composed into set masks,
// composedMasks — and groupKeySharing ratios), admission timeouts, the
// live queue depth, the overload-control state (shedTotal, shedByTenant,
// shedRatePerSec, queueWaitEwmaMs, drainRatePerSec — snapshotted under one
// lock with the queue depth, so the breakdown always sums to the total),
// the per-tenant fair-share ledgers (fairShares) and live knob values
// (coalesceWindowNs, resultCacheCapBytes), and — on a sharded engine — the
// shard fan-out and cross-batch artifact-cache counters (including
// artifactDoorkept, its admission doorkeeper): the observability surface
// of internal/qsched + internal/shard.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, s.engine.SchedulerStats())
}

// handleTrace serves one retained query-lifecycle trace: the span tree
// (admission wait, compile, shared scan with per-shard stage timings,
// finalize) of a query that was sampled or ended in an error. Look-ups
// use the X-Request-Id echoed on the query response.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t := s.engine.Tracer()
	if t == nil {
		writeErr(w, http.StatusNotFound, "tracing is disabled (set core.Options.TraceSampleRate > 0)")
		return
	}
	id := r.PathValue("id")
	snap, ok := t.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no trace %q (not sampled, evicted, or never seen)", id)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleTracesRecent lists recently retained traces, newest first.
// ?user= keeps one tenant's traces, ?min_ms= keeps traces at least that
// slow, and ?n= / ?limit= cap the count (default 20).
func (s *Server) handleTracesRecent(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n := 20
	for _, key := range []string{"n", "limit"} {
		if ns := q.Get(key); ns != "" {
			v, err := strconv.Atoi(ns)
			if err != nil || v <= 0 {
				writeErr(w, http.StatusBadRequest, "bad %s %q", key, ns)
				return
			}
			n = v
		}
	}
	var minMs float64
	if ms := q.Get("min_ms"); ms != "" {
		v, err := strconv.ParseFloat(ms, 64)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, "bad min_ms %q", ms)
			return
		}
		minMs = v
	}
	user, filterUser := q.Get("user"), q.Has("user")
	var keep func(obs.TraceSnapshot) bool
	if filterUser || minMs > 0 {
		keep = func(ts obs.TraceSnapshot) bool {
			if filterUser && ts.User != user {
				return false
			}
			return float64(ts.DurNs)/1e6 >= minMs
		}
	}
	out := s.engine.Tracer().RecentFiltered(n, keep) // nil-safe: nil tracer → no traces
	if out == nil {
		out = []obs.TraceSnapshot{}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTenants serves the per-tenant cost accounts, heaviest first:
// query and cache-hit counts, hit rate, and the accumulated cost vector
// (facts scanned, artifact bytes, CPU, sharing and caching credits).
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	out := s.engine.Accountant().Tenants()
	if out == nil {
		out = []obs.TenantStat{}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleQueriesTop serves the heavy-query profile registry: the top-n
// query fingerprints by decay-weighted cumulative cost, with call counts,
// mean/p99 latency, mean cost vector and the last retained trace ID.
func (s *Server) handleQueriesTop(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	n := 20
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v <= 0 {
			writeErr(w, http.StatusBadRequest, "bad n %q", ns)
			return
		}
		n = v
	}
	out := s.engine.Accountant().TopQueries(n)
	if out == nil {
		out = []obs.QueryProfile{}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics renders the engine's telemetry registry — per-stage
// latency histograms plus the scheduler counters — in the Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.engine.MetricsRegistry().WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

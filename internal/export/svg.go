package export

import (
	"fmt"
	"strings"

	"sdwp/internal/core"
	"sdwp/internal/geom"
)

// This file renders a personalized session as a standalone SVG map — the
// most direct form of the paper's "visualization aspects" future work: open
// the file and see exactly the warehouse slice the rules gave this decision
// maker. Styling is deliberately simple and semantic: layers in muted
// strokes, spatial-level members as dots (selected ones emphasized), the
// user location as a crosshair.

// SVGOptions configures the rendering.
type SVGOptions struct {
	// Width of the output image in pixels; height follows the data's
	// aspect ratio. Default 800.
	Width int
	// SimplifyTolerance forwards to the geometry simplifier (degrees).
	SimplifyTolerance float64
}

// SessionSVG renders the session's personalized map.
func SessionSVG(s *core.Session, opts SVGOptions) (string, error) {
	if opts.Width <= 0 {
		opts.Width = 800
	}
	fc, err := Session(s, Options{SimplifyTolerance: opts.SimplifyTolerance})
	if err != nil {
		return "", err
	}
	// Decode feature geometries once; compute the data bounds.
	type item struct {
		g     geom.Geometry
		props map[string]any
	}
	items := make([]item, 0, len(fc.Features))
	bounds := geom.EmptyRect()
	for _, f := range fc.Features {
		g, err := UnmarshalGeometry(f.Geometry)
		if err != nil {
			return "", err
		}
		items = append(items, item{g: g, props: f.Properties})
		bounds = bounds.ExtendRect(g.Bounds())
	}
	if bounds.IsEmpty() {
		return emptySVG(opts.Width), nil
	}
	bounds = bounds.Expand(0.05 * (bounds.Max.X - bounds.Min.X + 1e-9))

	w := float64(opts.Width)
	spanX := bounds.Max.X - bounds.Min.X
	spanY := bounds.Max.Y - bounds.Min.Y
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	h := w * spanY / spanX
	// Project lon/lat to image coordinates (y flipped).
	px := func(p geom.Point) (float64, float64) {
		return (p.X - bounds.Min.X) / spanX * w, h - (p.Y-bounds.Min.Y)/spanY*h
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="#fbfbf8"/>` + "\n")

	var layers, members, user []string
	for _, it := range items {
		kind, _ := it.props["kind"].(string)
		switch kind {
		case "layer":
			layerName, _ := it.props["layer"].(string)
			layers = append(layers, renderGeom(it.g, px, layerStyle(layerName)))
		case "member":
			sel, _ := it.props["selected"].(bool)
			style := `fill="#9aa5b1" stroke="none" r="3"`
			if sel {
				style = `fill="#d03838" stroke="#7a1414" stroke-width="1" r="5"`
			}
			members = append(members, renderGeom(it.g, px, style))
		case "userLocation":
			user = append(user, renderUser(it.g, px))
		}
	}
	// Paint order: layers under members under the user marker.
	for _, s := range layers {
		b.WriteString(s)
	}
	for _, s := range members {
		b.WriteString(s)
	}
	for _, s := range user {
		b.WriteString(s)
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func emptySVG(width int) string {
	return fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d"><rect width="100%%" height="100%%" fill="#fbfbf8"/></svg>`+"\n", width, width/2)
}

// layerStyle picks a stroke per layer name (stable hash → palette).
func layerStyle(name string) string {
	palette := []string{"#3f6fb5", "#4f9e54", "#b58a3f", "#8a5fb0", "#b05f77"}
	sum := 0
	for _, c := range name {
		sum += int(c)
	}
	color := palette[sum%len(palette)]
	return fmt.Sprintf(`fill="none" stroke="%s" stroke-width="1.5" opacity="0.8" r="4" pfill="%s"`, color, color)
}

// renderGeom renders one geometry. The style string carries "r" for point
// radius and "pfill" for the fill to use when a point is drawn from a
// stroke-styled layer.
func renderGeom(g geom.Geometry, px func(geom.Point) (float64, float64), style string) string {
	radius := extractAttr(style, "r", "3")
	pointFill := extractAttr(style, "pfill", "")
	cleanStyle := removeAttr(removeAttr(style, "r"), "pfill")
	var b strings.Builder
	var walk func(geom.Geometry)
	walk = func(g geom.Geometry) {
		switch gg := g.(type) {
		case geom.Point:
			x, y := px(gg)
			fill := extractAttr(cleanStyle, "fill", "#333")
			if pointFill != "" {
				fill = pointFill
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%s" fill="%s"/>`+"\n", x, y, radius, fill)
		case geom.Line:
			var pts []string
			for _, p := range gg.Pts {
				x, y := px(p)
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
			}
			fmt.Fprintf(&b, `<polyline points="%s" %s/>`+"\n", strings.Join(pts, " "), cleanStyle)
		case geom.Polygon:
			var d strings.Builder
			writeRingPath := func(r geom.Ring) {
				for i, p := range r {
					x, y := px(p)
					if i == 0 {
						fmt.Fprintf(&d, "M%.1f %.1f", x, y)
					} else {
						fmt.Fprintf(&d, "L%.1f %.1f", x, y)
					}
				}
				d.WriteString("Z")
			}
			writeRingPath(gg.Shell)
			for _, hole := range gg.Holes {
				writeRingPath(hole)
			}
			fmt.Fprintf(&b, `<path d="%s" fill-rule="evenodd" %s/>`+"\n", d.String(), cleanStyle)
		case geom.Collection:
			for _, m := range gg.Geoms {
				walk(m)
			}
		}
	}
	walk(g)
	return b.String()
}

// renderUser draws the decision maker's location as a crosshair.
func renderUser(g geom.Geometry, px func(geom.Point) (float64, float64)) string {
	p, ok := g.(geom.Point)
	if !ok {
		c := g.Bounds().Center()
		p = c
	}
	x, y := px(p)
	return fmt.Sprintf(
		`<g stroke="#1a7a1a" stroke-width="2"><line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/><line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/><circle cx="%.1f" cy="%.1f" r="7" fill="none"/></g>`+"\n",
		x-10, y, x+10, y, x, y-10, x, y+10, x, y)
}

// attrIndex finds attr="… at a word boundary (start of string or after a
// space), returning the index of the value's first character, or -1.
func attrIndex(style, attr string) int {
	marker := attr + `="`
	from := 0
	for {
		i := strings.Index(style[from:], marker)
		if i < 0 {
			return -1
		}
		i += from
		if i == 0 || style[i-1] == ' ' {
			return i + len(marker)
		}
		from = i + 1
	}
}

// extractAttr pulls attr="value" out of a style string.
func extractAttr(style, attr, fallback string) string {
	i := attrIndex(style, attr)
	if i < 0 {
		return fallback
	}
	j := strings.IndexByte(style[i:], '"')
	if j < 0 {
		return fallback
	}
	return style[i : i+j]
}

// removeAttr strips attr="value" from a style string.
func removeAttr(style, attr string) string {
	i := attrIndex(style, attr)
	if i < 0 {
		return style
	}
	j := strings.IndexByte(style[i:], '"')
	if j < 0 {
		return style
	}
	start := i - len(attr) - 2
	return strings.TrimSpace(style[:start] + style[i+j+1:])
}

// Package export renders personalized sessions as GeoJSON (RFC 7946) for
// map front ends — the "visualization aspects of the SDW" the paper lists
// as future work. A session exports exactly what its personalized GeoMD
// schema contains: the thematic layers its AddLayer rules admitted and the
// spatial levels its BecomeSpatial rules promoted, with each member's
// selection state from the personalized view.
package export

import (
	"encoding/json"
	"fmt"

	"sdwp/internal/core"
	"sdwp/internal/geom"
)

// Feature is a GeoJSON feature.
type Feature struct {
	Type       string          `json:"type"`
	Geometry   json.RawMessage `json:"geometry"`
	Properties map[string]any  `json:"properties,omitempty"`
}

// FeatureCollection is a GeoJSON feature collection.
type FeatureCollection struct {
	Type     string    `json:"type"`
	Features []Feature `json:"features"`
}

// geoJSONGeom is the wire form of a GeoJSON geometry.
type geoJSONGeom struct {
	Type        string          `json:"type"`
	Coordinates json.RawMessage `json:"coordinates,omitempty"`
	Geometries  []geoJSONGeom   `json:"geometries,omitempty"`
}

// MarshalGeometry encodes a geometry as a GeoJSON geometry object.
func MarshalGeometry(g geom.Geometry) (json.RawMessage, error) {
	gg, err := toGeoJSON(g)
	if err != nil {
		return nil, err
	}
	return json.Marshal(gg)
}

func toGeoJSON(g geom.Geometry) (geoJSONGeom, error) {
	marshal := func(v any) json.RawMessage {
		raw, _ := json.Marshal(v)
		return raw
	}
	switch gg := g.(type) {
	case geom.Point:
		return geoJSONGeom{Type: "Point", Coordinates: marshal([2]float64{gg.X, gg.Y})}, nil
	case geom.Line:
		coords := make([][2]float64, len(gg.Pts))
		for i, p := range gg.Pts {
			coords[i] = [2]float64{p.X, p.Y}
		}
		return geoJSONGeom{Type: "LineString", Coordinates: marshal(coords)}, nil
	case geom.Polygon:
		rings := make([][][2]float64, 0, 1+len(gg.Holes))
		rings = append(rings, closedRing(gg.Shell))
		for _, h := range gg.Holes {
			rings = append(rings, closedRing(h))
		}
		return geoJSONGeom{Type: "Polygon", Coordinates: marshal(rings)}, nil
	case geom.Collection:
		out := geoJSONGeom{Type: "GeometryCollection", Geometries: []geoJSONGeom{}}
		for _, m := range gg.Geoms {
			sub, err := toGeoJSON(m)
			if err != nil {
				return geoJSONGeom{}, err
			}
			out.Geometries = append(out.Geometries, sub)
		}
		return out, nil
	case nil:
		return geoJSONGeom{}, fmt.Errorf("export: nil geometry")
	}
	return geoJSONGeom{}, fmt.Errorf("export: unsupported geometry %T", g)
}

// closedRing emits the GeoJSON convention of repeating the first vertex.
func closedRing(r geom.Ring) [][2]float64 {
	out := make([][2]float64, 0, len(r)+1)
	for _, p := range r {
		out = append(out, [2]float64{p.X, p.Y})
	}
	if len(r) > 0 {
		out = append(out, [2]float64{r[0].X, r[0].Y})
	}
	return out
}

// UnmarshalGeometry decodes a GeoJSON geometry object.
func UnmarshalGeometry(raw json.RawMessage) (geom.Geometry, error) {
	var gg geoJSONGeom
	if err := json.Unmarshal(raw, &gg); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	return fromGeoJSON(gg)
}

func fromGeoJSON(gg geoJSONGeom) (geom.Geometry, error) {
	switch gg.Type {
	case "Point":
		var c [2]float64
		if err := json.Unmarshal(gg.Coordinates, &c); err != nil {
			return nil, fmt.Errorf("export: point coordinates: %w", err)
		}
		return geom.Pt(c[0], c[1]), nil
	case "LineString":
		var cs [][2]float64
		if err := json.Unmarshal(gg.Coordinates, &cs); err != nil {
			return nil, fmt.Errorf("export: linestring coordinates: %w", err)
		}
		if len(cs) < 2 {
			return nil, fmt.Errorf("export: linestring needs 2+ points")
		}
		pts := make([]geom.Point, len(cs))
		for i, c := range cs {
			pts[i] = geom.Pt(c[0], c[1])
		}
		return geom.Line{Pts: pts}, nil
	case "Polygon":
		var rings [][][2]float64
		if err := json.Unmarshal(gg.Coordinates, &rings); err != nil {
			return nil, fmt.Errorf("export: polygon coordinates: %w", err)
		}
		if len(rings) == 0 {
			return nil, fmt.Errorf("export: polygon needs a shell")
		}
		conv := func(ring [][2]float64) (geom.Ring, error) {
			pts := make(geom.Ring, 0, len(ring))
			for _, c := range ring {
				pts = append(pts, geom.Pt(c[0], c[1]))
			}
			if len(pts) >= 2 && pts[0].Eq(pts[len(pts)-1]) {
				pts = pts[:len(pts)-1]
			}
			if len(pts) < 3 {
				return nil, fmt.Errorf("export: ring needs 3+ distinct points")
			}
			return pts, nil
		}
		shell, err := conv(rings[0])
		if err != nil {
			return nil, err
		}
		poly := geom.Polygon{Shell: shell}
		for _, h := range rings[1:] {
			hole, err := conv(h)
			if err != nil {
				return nil, err
			}
			poly.Holes = append(poly.Holes, hole)
		}
		return poly, nil
	case "GeometryCollection":
		var gs []geom.Geometry
		for _, sub := range gg.Geometries {
			m, err := fromGeoJSON(sub)
			if err != nil {
				return nil, err
			}
			gs = append(gs, m)
		}
		return geom.Collection{Geoms: gs}, nil
	}
	return nil, fmt.Errorf("export: unsupported GeoJSON type %q", gg.Type)
}

// Options configures a session export.
type Options struct {
	// SimplifyTolerance, when positive, Douglas-Peucker-simplifies line and
	// polygon geometries before encoding (planar degrees).
	SimplifyTolerance float64
	// SelectedOnly limits spatial-level members to those selected in the
	// personalized view.
	SelectedOnly bool
}

// Session renders a personalized session as a FeatureCollection: one
// feature per object of every layer in the session's schema, one per member
// of every spatial level (with its selection state), plus the user's
// location context when known.
func Session(s *core.Session, opts Options) (*FeatureCollection, error) {
	fc := &FeatureCollection{Type: "FeatureCollection", Features: []Feature{}}
	schema := s.Schema()
	c := s.Engine().Cube()

	emit := func(g geom.Geometry, props map[string]any) error {
		if opts.SimplifyTolerance > 0 {
			g = geom.Simplify(g, opts.SimplifyTolerance)
		}
		raw, err := MarshalGeometry(g)
		if err != nil {
			return err
		}
		fc.Features = append(fc.Features, Feature{Type: "Feature", Geometry: raw, Properties: props})
		return nil
	}

	// Thematic layers the user's schema rules admitted.
	for _, layer := range schema.Layers() {
		ld := c.Layer(layer.Name)
		if ld == nil {
			continue
		}
		for i := int32(0); int(i) < ld.Len(); i++ {
			err := emit(ld.Geometry(i), map[string]any{
				"kind":  "layer",
				"layer": layer.Name,
				"name":  ld.Name(i),
			})
			if err != nil {
				return nil, err
			}
		}
	}

	// Spatial levels the user's schema rules promoted.
	view := s.View()
	for _, qualified := range schema.SpatialLevels() {
		dim, level := splitQualified(qualified)
		dd := c.Dimension(dim)
		if dd == nil {
			continue
		}
		ld := dd.Level(level)
		if ld == nil {
			continue
		}
		for i := int32(0); int(i) < ld.Len(); i++ {
			g := ld.Geometry(i)
			if g == nil {
				continue
			}
			selected := view.MemberVisible(dim, level, i) && view.LevelMask(dim, level) != nil
			if opts.SelectedOnly && !selected {
				continue
			}
			err := emit(g, map[string]any{
				"kind":      "member",
				"dimension": dim,
				"level":     level,
				"name":      ld.Name(i),
				"selected":  selected,
			})
			if err != nil {
				return nil, err
			}
		}
	}

	// The decision maker's location context.
	if loc := s.Location(); loc != nil {
		if err := emit(loc, map[string]any{"kind": "userLocation", "user": s.UserID}); err != nil {
			return nil, err
		}
	}
	return fc, nil
}

func splitQualified(q string) (dim, level string) {
	for i := 0; i < len(q); i++ {
		if q[i] == '.' {
			return q[:i], q[i+1:]
		}
	}
	return q, ""
}

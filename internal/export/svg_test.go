package export

import (
	"strings"
	"testing"
)

func TestStyleAttrHelpers(t *testing.T) {
	style := `fill="none" stroke="#3f6fb5" stroke-width="1.5" r="4" pfill="#3f6fb5"`
	if got := extractAttr(style, "r", "x"); got != "4" {
		t.Errorf("r = %q", got)
	}
	if got := extractAttr(style, "stroke", "x"); got != "#3f6fb5" {
		t.Errorf("stroke = %q", got)
	}
	if got := extractAttr(style, "missing", "fb"); got != "fb" {
		t.Errorf("fallback = %q", got)
	}
	// "r" must not match inside "stroke" or any other attribute name.
	if got := extractAttr(`color="#fff"`, "r", "fb"); got != "fb" {
		t.Errorf("boundary violated: %q", got)
	}
	out := removeAttr(style, "r")
	if strings.Contains(out, ` r="`) || !strings.Contains(out, `stroke-width="1.5"`) {
		t.Errorf("removeAttr = %q", out)
	}
	if got := removeAttr(style, "missing"); got != style {
		t.Errorf("removeAttr missing changed string")
	}
}

func TestSessionSVG(t *testing.T) {
	s, _ := sessionForExport(t)
	svg, err := SessionSVG(s, SVGOptions{Width: 640})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg" width="640"`,
		"<polyline",        // train lines
		"<circle",          // airports / stores
		`fill="#d03838"`,   // selected members emphasized
		`stroke="#1a7a1a"`, // user crosshair
		"</svg>",
	} {
		if !strings.Contains(svg, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	// All coordinates inside the viewBox (no negative positions).
	if strings.Contains(svg, `cx="-`) || strings.Contains(svg, `x1="-`) {
		// The crosshair may extend 10px past a point at the very edge; the
		// bounds padding makes this effectively impossible for the data,
		// so treat it as a bug.
		t.Error("negative coordinates in SVG")
	}
}

func TestSessionSVGDefaultsAndSimplify(t *testing.T) {
	s, _ := sessionForExport(t)
	svg, err := SessionSVG(s, SVGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, `width="800"`) {
		t.Error("default width not applied")
	}
	simplified, err := SessionSVG(s, SVGOptions{SimplifyTolerance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(simplified) >= len(svg) {
		t.Errorf("simplified SVG (%d bytes) not smaller than full (%d)", len(simplified), len(svg))
	}
}

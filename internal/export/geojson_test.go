package export

import (
	"encoding/json"
	"strings"
	"testing"

	"sdwp/internal/core"
	"sdwp/internal/datagen"
	"sdwp/internal/geom"
	"sdwp/internal/prml"
)

func TestGeometryRoundTrip(t *testing.T) {
	geoms := []geom.Geometry{
		geom.Pt(1.5, -2.25),
		geom.Ln(geom.Pt(0, 0), geom.Pt(3, 4), geom.Pt(5, 0)),
		geom.Poly(geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2, 2), geom.Pt(0, 2)),
		geom.Polygon{
			Shell: geom.Ring{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4)},
			Holes: []geom.Ring{{geom.Pt(1, 1), geom.Pt(2, 1), geom.Pt(2, 2), geom.Pt(1, 2)}},
		},
		geom.Coll(geom.Pt(1, 1), geom.Ln(geom.Pt(0, 0), geom.Pt(1, 1))),
	}
	for _, g := range geoms {
		raw, err := MarshalGeometry(g)
		if err != nil {
			t.Fatalf("marshal %s: %v", g.WKT(), err)
		}
		back, err := UnmarshalGeometry(raw)
		if err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if !geom.Equals(g, back) {
			t.Errorf("round trip changed %s → %s", g.WKT(), back.WKT())
		}
	}
}

func TestGeometryEncodingShapes(t *testing.T) {
	raw, err := MarshalGeometry(geom.Pt(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"type":"Point","coordinates":[1,2]}` {
		t.Errorf("point encoding = %s", raw)
	}
	// Polygon rings are closed on output.
	raw, _ = MarshalGeometry(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)))
	if !strings.Contains(string(raw), `[[[0,0],[1,0],[0,1],[0,0]]]`) {
		t.Errorf("polygon encoding = %s", raw)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for _, raw := range []string{
		`not json`,
		`{"type":"Volcano","coordinates":[1,2]}`,
		`{"type":"Point","coordinates":"x"}`,
		`{"type":"LineString","coordinates":[[1,2]]}`,
		`{"type":"Polygon","coordinates":[]}`,
		`{"type":"Polygon","coordinates":[[[0,0],[1,1]]]}`,
		`{"type":"GeometryCollection","geometries":[{"type":"Volcano"}]}`,
	} {
		if _, err := UnmarshalGeometry(json.RawMessage(raw)); err == nil {
			t.Errorf("accepted %s", raw)
		}
	}
	if _, err := MarshalGeometry(nil); err == nil {
		t.Error("marshal nil should fail")
	}
}

func sessionForExport(t *testing.T) (*core.Session, *datagen.Dataset) {
	t.Helper()
	cfg := datagen.Default()
	cfg.Cities = 15
	cfg.Stores = 60
	cfg.Customers = 30
	cfg.Sales = 500
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	users, err := datagen.NewUserStore(map[string]string{"alice": "RegionalSalesManager"})
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(ds.Cube, users, core.Options{})
	e.SetParam("threshold", prml.NumberVal(2))
	if _, err := e.AddRules(`
Rule:addSpatiality When SessionStart do
  AddLayer('Airport', POINT)
  AddLayer('Train', LINE)
  BecomeSpatial(MD.Sales.Store.geometry, POINT)
endWhen
Rule:near When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 10km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`); err != nil {
		t.Fatal(err)
	}
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	return s, ds
}

func TestSessionExport(t *testing.T) {
	s, ds := sessionForExport(t)
	fc, err := Session(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fc.Type != "FeatureCollection" {
		t.Fatalf("type = %s", fc.Type)
	}
	counts := map[string]int{}
	selected := 0
	for _, f := range fc.Features {
		kind, _ := f.Properties["kind"].(string)
		counts[kind]++
		if sel, _ := f.Properties["selected"].(bool); sel {
			selected++
		}
	}
	airports := ds.Cube.Layer(datagen.LayerAirport).Len()
	trains := ds.Cube.Layer(datagen.LayerTrain).Len()
	if counts["layer"] != airports+trains {
		t.Errorf("layer features = %d, want %d", counts["layer"], airports+trains)
	}
	if counts["member"] != 60 {
		t.Errorf("member features = %d, want 60 stores", counts["member"])
	}
	if counts["userLocation"] != 1 {
		t.Errorf("userLocation features = %d", counts["userLocation"])
	}
	if selected == 0 {
		t.Error("no selected members exported")
	}
	// The whole collection is valid JSON.
	if _, err := json.Marshal(fc); err != nil {
		t.Fatal(err)
	}
}

func TestSessionExportSelectedOnly(t *testing.T) {
	s, _ := sessionForExport(t)
	all, err := Session(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Session(s, Options{SelectedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Features) >= len(all.Features) {
		t.Fatalf("selected-only (%d) should be smaller than all (%d)",
			len(sel.Features), len(all.Features))
	}
	for _, f := range sel.Features {
		if f.Properties["kind"] == "member" {
			if selFlag, _ := f.Properties["selected"].(bool); !selFlag {
				t.Fatal("unselected member exported in SelectedOnly mode")
			}
		}
	}
}

func TestSessionExportSimplifies(t *testing.T) {
	s, ds := sessionForExport(t)
	plain, err := Session(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	simplified, err := Session(s, Options{SimplifyTolerance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Features) != len(simplified.Features) {
		t.Fatal("simplification must not drop features")
	}
	// Train lines have fewer coordinates after simplification.
	rawLen := func(fc *FeatureCollection) int {
		total := 0
		for _, f := range fc.Features {
			if f.Properties["layer"] == datagen.LayerTrain {
				total += len(f.Geometry)
			}
		}
		return total
	}
	if rawLen(simplified) >= rawLen(plain) {
		t.Errorf("train lines not simplified: %d vs %d", rawLen(simplified), rawLen(plain))
	}
	_ = ds
}

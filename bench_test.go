package sdwp

// One testing.B target per experiment in DESIGN.md §4. The cmd/experiments
// harness prints the human-readable tables; these benches make the same
// measurements reproducible via `go test -bench`.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sdwp/internal/geoidx"
	"sdwp/internal/geom"
	"sdwp/internal/obs"
	"sdwp/internal/prml"
	"sdwp/internal/qsched"
)

// benchEnv lazily builds one standard scenario per fact count and caches it
// across benchmarks (dataset generation dominates otherwise).
type benchEnv struct {
	engine *Engine
	ds     *Dataset
}

var (
	benchMu   sync.Mutex
	benchEnvs = map[int]*benchEnv{}
)

func getBenchEnv(b *testing.B, facts int) *benchEnv {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if e, ok := benchEnvs[facts]; ok {
		return e
	}
	cfg := DefaultDataConfig()
	cfg.Stores = 2000
	cfg.Sales = facts
	ds, err := GenerateData(cfg)
	if err != nil {
		b.Fatal(err)
	}
	users, err := NewSalesUserStore(map[string]string{
		"alice": "RegionalSalesManager",
		"bob":   "Accountant",
	})
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(ds.Cube, users, EngineOptions{})
	e.SetParam("threshold", Number(2))
	if _, err := e.AddRules(PaperRules); err != nil {
		b.Fatal(err)
	}
	env := &benchEnv{engine: e, ds: ds}
	benchEnvs[facts] = env
	return env
}

var familyQuery = Query{
	Fact:       "Sales",
	GroupBy:    []LevelRef{{Dimension: "Product", Level: "Family"}},
	Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: SUM}},
}

// BenchmarkX1SchemaRule measures Example 5.1: applying the addSpatiality
// schema rule during session start (schema clone + two schema actions).
func BenchmarkX1SchemaRule(b *testing.B) {
	env := getBenchEnv(b, 20000)
	loc := env.ds.CityLocs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := env.engine.StartSession("alice", loc)
		if err != nil {
			b.Fatal(err)
		}
		if err := env.engine.EndSession(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkX2InstanceRule measures Example 5.2's store sweep in isolation
// across store counts: the Foreach + Distance < 5km rule evaluation.
func BenchmarkX2InstanceRule(b *testing.B) {
	for _, stores := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("stores=%d", stores), func(b *testing.B) {
			cfg := DefaultDataConfig()
			cfg.Stores = stores
			cfg.Sales = 1000 // facts irrelevant here
			ds, err := GenerateData(cfg)
			if err != nil {
				b.Fatal(err)
			}
			users, err := NewSalesUserStore(map[string]string{"u": "RegionalSalesManager"})
			if err != nil {
				b.Fatal(err)
			}
			e := NewEngine(ds.Cube, users, EngineOptions{})
			// Only the instance rule, isolated.
			if _, err := e.AddRules(`Rule:5kmStores When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`); err != nil {
				b.Fatal(err)
			}
			loc := ds.CityLocs[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := e.StartSession("u", loc)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.EndSession(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkX3InterestTracking measures Example 5.3's tracking path: a
// spatial selection over cities plus the SpatialSelection rule firing.
func BenchmarkX3InterestTracking(b *testing.B) {
	env := getBenchEnv(b, 20000)
	s, err := env.engine.StartSession("alice", env.ds.CityLocs[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SpatialSelect("GeoMD.Store.City",
			"Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkC1PersonalizedVsFullScan is experiment C1: the same OLAP query
// through a personalized view vs the whole warehouse.
func BenchmarkC1PersonalizedVsFullScan(b *testing.B) {
	for _, facts := range []int{20000, 200000} {
		env := getBenchEnv(b, facts)
		s, err := env.engine.StartSession("alice", env.ds.CityLocs[7])
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("facts=%d/personalized", facts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Query(familyQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("facts=%d/baseline", facts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.QueryBaseline(familyQuery); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkC2PreselectVsPerQuery is experiment C2: a 10-query analysis
// session where selection happens once at login vs re-running the spatial
// filter for every query.
func BenchmarkC2PreselectVsPerQuery(b *testing.B) {
	env := getBenchEnv(b, 200000)
	loc := env.ds.CityLocs[7]
	const queriesPerSession = 10
	b.Run("preselected", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := env.engine.StartSession("alice", loc)
			if err != nil {
				b.Fatal(err)
			}
			for q := 0; q < queriesPerSession; q++ {
				if _, err := s.Query(familyQuery); err != nil {
					b.Fatal(err)
				}
			}
			if err := env.engine.EndSession(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("perquery", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for q := 0; q < queriesPerSession; q++ {
				s, err := env.engine.StartSession("alice", loc)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Query(familyQuery); err != nil {
					b.Fatal(err)
				}
				if err := env.engine.EndSession(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkC3PRMLParse is experiment C3's parsing cost: the paper's four
// rules through lexer, parser and classifier.
func BenchmarkC3PRMLParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rules, err := ParseRules(PaperRules)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rules {
			_ = prml.Classify(r)
		}
	}
}

// BenchmarkC3SessionStart is experiment C3's end-to-end login cost with the
// full paper rule set.
func BenchmarkC3SessionStart(b *testing.B) {
	env := getBenchEnv(b, 20000)
	loc := env.ds.CityLocs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := env.engine.StartSession("bob", loc) // bob: no schema actions
		if err != nil {
			b.Fatal(err)
		}
		if err := env.engine.EndSession(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkC4RTreeVsLinear is experiment C4: radius queries through the
// R-tree vs the linear baseline.
func BenchmarkC4RTreeVsLinear(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		rng := rand.New(rand.NewSource(42))
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*12-9, rng.Float64()*7+36)
		}
		center := geom.Pt(-3.7, 40.4)
		rt := geoidx.NewPointIndex(pts)
		lin := geoidx.NewLinearPointIndex(pts)
		b.Run(fmt.Sprintf("n=%d/rtree", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rt.WithinKm(center, 25, func(int32) bool { return true })
			}
		})
		b.Run(fmt.Sprintf("n=%d/linear", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lin.WithinKm(center, 25, func(int32) bool { return true })
			}
		})
	}
}

// BenchmarkC5CubeRollup is experiment C5: aggregation grouped at each level
// of the Store hierarchy.
func BenchmarkC5CubeRollup(b *testing.B) {
	env := getBenchEnv(b, 200000)
	for _, level := range []string{"Store", "City", "State", "Country"} {
		q := Query{
			Fact:       "Sales",
			GroupBy:    []LevelRef{{Dimension: "Store", Level: level}},
			Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: SUM}},
		}
		b.Run("level="+level, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := env.ds.Cube.Execute(q, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelScan measures the partitioned parallel query executor
// against the serial scan on the full (non-personalized) fact table, across
// worker counts. workers=1 is the serial fallback path.
func BenchmarkParallelScan(b *testing.B) {
	env := getBenchEnv(b, 200000)
	q := Query{
		Fact:       "Sales",
		GroupBy:    []LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: SUM}},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := env.ds.Cube.ExecuteParallel(q, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSharedScanBatch measures the shared-scan batch API: eight
// aggregate queries over the same fact table answered one by one vs in one
// ExecuteBatch call (GLADE-style multi-query optimization), serial and
// parallel.
func BenchmarkSharedScanBatch(b *testing.B) {
	env := getBenchEnv(b, 200000)
	var qs []Query
	for _, level := range []string{"Store", "City", "State", "Country"} {
		for _, measure := range []string{"UnitSales", "StoreSales"} {
			qs = append(qs, Query{
				Fact:       "Sales",
				GroupBy:    []LevelRef{{Dimension: "Store", Level: level}},
				Aggregates: []MeasureAgg{{Measure: measure, Agg: SUM}},
			})
		}
	}
	b.Run("individual", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				if _, err := env.ds.Cube.Execute(q, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("batch/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := env.ds.Cube.ExecuteBatch(qs, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSharedSubexprBatch measures cross-query subexpression sharing
// in the batch executor: 16 queries over one fact table sharing one
// filter set and four groupings — the "many personalized variants of one
// dashboard" shape — executed with sharing off (every query re-evaluates
// the filters and re-decodes its group keys per fact, the PR 1 fused
// path) vs on (one filter bitmap and one key column per distinct
// artifact, shared by the whole batch).
func BenchmarkSharedSubexprBatch(b *testing.B) {
	env := getBenchEnv(b, 200000)
	filters := []AttrFilter{{
		LevelRef: LevelRef{Dimension: "Store", Level: "City"},
		Attr:     "population", Op: OpGt, Value: float64(100000),
	}}
	var qs []Query
	for _, level := range []string{"Store", "City", "State", "Country"} {
		for _, measure := range []string{"UnitSales", "StoreSales"} {
			for _, limit := range []int{0, 5} {
				qs = append(qs, Query{
					Fact:       "Sales",
					GroupBy:    []LevelRef{{Dimension: "Store", Level: level}},
					Aggregates: []MeasureAgg{{Measure: measure, Agg: SUM}},
					Filters:    filters,
					Limit:      limit,
				})
			}
		}
	}
	for _, workers := range []int{1, 8} {
		for _, noShare := range []bool{true, false} {
			name := fmt.Sprintf("workers=%d/shared=%v", workers, !noShare)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := env.ds.Cube.ExecuteBatchOpt(qs, nil,
						BatchOptions{Workers: workers, DisableSharing: noShare}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBatchPartialPooling measures the pooled-partial discipline of
// the morsel executor: the same 16-query sharing batch as
// BenchmarkSharedSubexprBatch, re-run on a warm per-table pool so every
// scan should take its partial tables from FactData.partialPool instead
// of allocating them. poolhit/op is reused/(reused+allocated) across the
// run — the steady-state pool hit rate (1.0 means no partial-table or
// accumulator allocation after warm-up); allocs/op tracks what remains.
func BenchmarkBatchPartialPooling(b *testing.B) {
	env := getBenchEnv(b, 200000)
	filters := []AttrFilter{{
		LevelRef: LevelRef{Dimension: "Store", Level: "City"},
		Attr:     "population", Op: OpGt, Value: float64(100000),
	}}
	var qs []Query
	for _, level := range []string{"Store", "City", "State", "Country"} {
		for _, measure := range []string{"UnitSales", "StoreSales"} {
			for _, limit := range []int{0, 5} {
				qs = append(qs, Query{
					Fact:       "Sales",
					GroupBy:    []LevelRef{{Dimension: "Store", Level: level}},
					Aggregates: []MeasureAgg{{Measure: measure, Agg: SUM}},
					Filters:    filters,
					Limit:      limit,
				})
			}
		}
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := BatchOptions{Workers: workers}
			if _, _, err := env.ds.Cube.ExecuteBatchOpt(qs, nil, opts); err != nil {
				b.Fatal(err) // warm the pool outside the timer
			}
			b.ReportAllocs()
			b.ResetTimer()
			var reused, allocated int
			for i := 0; i < b.N; i++ {
				_, st, err := env.ds.Cube.ExecuteBatchOpt(qs, nil, opts)
				if err != nil {
					b.Fatal(err)
				}
				reused += st.PartialsReused
				allocated += st.PartialsAllocated
			}
			if total := reused + allocated; total > 0 {
				b.ReportMetric(float64(reused)/float64(total), "poolhit/op")
			}
		})
	}
}

// BenchmarkPerFilterSharing measures per-predicate bitmap sharing with
// AND-composition: a 16-query batch whose filter sets are
// overlapping-but-unequal — six pairwise conjunctions drawn from a pool
// of four predicates — so whole-set sharing (perfilter=false) must
// materialize six set masks by evaluating six full conjunctions, while
// per-filter sharing (perfilter=true) evaluates each of the four
// predicates once and AND-composes the six set masks from the bitmaps.
func BenchmarkPerFilterSharing(b *testing.B) {
	env := getBenchEnv(b, 200000)
	mkF := func(dim, level, attr string, op FilterOp, v any) AttrFilter {
		return AttrFilter{LevelRef: LevelRef{Dimension: dim, Level: level}, Attr: attr, Op: op, Value: v}
	}
	pool := []AttrFilter{
		mkF("Store", "City", "population", OpGt, float64(100000)),
		mkF("Store", "City", "population", OpGt, float64(1000000)),
		mkF("Customer", "Customer", "age", OpLe, float64(40)),
		mkF("Product", "Product", "brand", OpNe, "Brand05"),
	}
	// All six pairwise sets, cycled with levels/measures into 16 queries.
	var sets [][]AttrFilter
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			sets = append(sets, []AttrFilter{pool[i], pool[j]})
		}
	}
	var qs []Query
	levels := []string{"Store", "City", "State", "Country"}
	measures := []string{"UnitSales", "StoreSales"}
	for k := 0; k < 16; k++ {
		qs = append(qs, Query{
			Fact:       "Sales",
			GroupBy:    []LevelRef{{Dimension: "Store", Level: levels[k%len(levels)]}},
			Aggregates: []MeasureAgg{{Measure: measures[k%len(measures)], Agg: SUM}},
			Filters:    sets[k%len(sets)],
		})
	}
	for _, workers := range []int{1, 8} {
		for _, perFilter := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/perfilter=%v", workers, perFilter)
			b.Run(name, func(b *testing.B) {
				var stats SharingStats
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					_, stats, err = env.ds.Cube.ExecuteBatchOpt(qs, nil,
						BatchOptions{Workers: workers, DisablePredicateSharing: !perFilter})
					if err != nil {
						b.Fatal(err)
					}
				}
				if perFilter && stats.DistinctPredicates > 0 {
					b.ReportMetric(float64(stats.FilterPredicates)/float64(stats.DistinctPredicates),
						"preds/mask")
					b.ReportMetric(float64(stats.ComposedMasks), "composed")
				}
			})
		}
	}
}

// BenchmarkCoalescedConcurrentQueries measures the query scheduler under
// the workload it exists for: many goroutines issuing concurrent
// personalized single queries. direct bypasses the scheduler (one scan per
// query); coalesced routes through it (window 0: batches form behind the
// in-flight bound). The coalesced run reports queries-per-scan — its
// whole point is making that > 1.
func BenchmarkCoalescedConcurrentQueries(b *testing.B) {
	env := getBenchEnv(b, 200000)
	const concurrentSessions = 8
	for _, mode := range []string{"direct", "coalesced"} {
		b.Run(mode, func(b *testing.B) {
			opts := EngineOptions{DisableScheduler: mode == "direct"}
			if mode == "coalesced" {
				// A sub-millisecond window plus one scan slot is the
				// configuration that actually merges concurrent clients
				// into shared scans on any host (with window 0 a fast
				// single-CPU host dispatches each query before the next
				// client gets scheduled).
				opts.CoalesceWindow = 200 * time.Microsecond
				opts.MaxInFlightScans = 1
			}
			users, err := NewSalesUserStore(map[string]string{"alice": "RegionalSalesManager"})
			if err != nil {
				b.Fatal(err)
			}
			e := NewEngine(env.ds.Cube, users, opts)
			if _, err := e.AddRules(`Rule:5kmStores When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`); err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			sessions := make([]*Session, concurrentSessions)
			for i := range sessions {
				s, err := e.StartSession("alice", env.ds.CityLocs[i%len(env.ds.CityLocs)])
				if err != nil {
					b.Fatal(err)
				}
				sessions[i] = s
			}
			var next atomic.Int64
			b.ReportAllocs()
			// Several client goroutines per core: coalescing serves
			// concurrent *clients*, not cores, and must show up even on a
			// single-CPU host.
			b.SetParallelism(concurrentSessions)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				s := sessions[int(next.Add(1))%len(sessions)]
				for pb.Next() {
					if _, err := s.Query(familyQuery); err != nil {
						// b.Fatal must not run off the benchmark goroutine.
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if mode == "coalesced" {
				if st := e.SchedulerStats(); st.FactScans > 0 {
					b.ReportMetric(st.CoalesceRatio, "queries/scan")
				}
			}
		})
	}
}

// BenchmarkResultCacheHit measures the epoch-keyed result cache: the same
// personalized query repeated against an unchanged view must cost a map
// lookup, not a fact scan.
func BenchmarkResultCacheHit(b *testing.B) {
	env := getBenchEnv(b, 200000)
	users, err := NewSalesUserStore(map[string]string{"alice": "RegionalSalesManager"})
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(env.ds.Cube, users, EngineOptions{ResultCacheBytes: 32 << 20})
	defer e.Close()
	s, err := e.StartSession("alice", env.ds.CityLocs[0])
	if err != nil {
		b.Fatal(err)
	}
	// Prime twice: the admission doorkeeper only caches a fingerprint's
	// result from its second request on.
	for i := 0; i < 2; i++ {
		if _, err := s.Query(familyQuery); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(familyQuery); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := e.SchedulerStats()
	if st.CacheHits < int64(b.N) {
		b.Fatalf("cache hits = %d, want >= %d", st.CacheHits, b.N)
	}
}

// BenchmarkAblationRuleOptimizer measures the DESIGN.md §6 ablation of the
// radius-query rule plan: Example 5.2's rule executed through the R-tree
// fast path vs the generic tree-walking interpreter.
func BenchmarkAblationRuleOptimizer(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "optimized"
		if disable {
			name = "interpreted"
		}
		for _, stores := range []int{10000, 100000} {
			b.Run(fmt.Sprintf("%s/stores=%d", name, stores), func(b *testing.B) {
				cfg := DefaultDataConfig()
				cfg.Stores = stores
				cfg.Sales = 1000
				ds, err := GenerateData(cfg)
				if err != nil {
					b.Fatal(err)
				}
				users, err := NewSalesUserStore(map[string]string{"u": "RegionalSalesManager"})
				if err != nil {
					b.Fatal(err)
				}
				e := NewEngine(ds.Cube, users, EngineOptions{DisableRuleOptimizer: disable})
				if _, err := e.AddRules(`Rule:near When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`); err != nil {
					b.Fatal(err)
				}
				loc := ds.CityLocs[0]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s, err := e.StartSession("u", loc)
					if err != nil {
						b.Fatal(err)
					}
					if err := e.EndSession(s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationGeodeticVsPlanar measures the ablation of DESIGN.md §6:
// the geodetic (haversine) Distance operator vs the naive planar-degrees
// one, over the Example 5.2 rule evaluation.
func BenchmarkAblationGeodeticVsPlanar(b *testing.B) {
	for _, planar := range []bool{false, true} {
		name := "geodetic"
		if planar {
			name = "planar"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultDataConfig()
			cfg.Stores = 10000
			cfg.Sales = 1000
			ds, err := GenerateData(cfg)
			if err != nil {
				b.Fatal(err)
			}
			users, err := NewSalesUserStore(map[string]string{"u": "RegionalSalesManager"})
			if err != nil {
				b.Fatal(err)
			}
			e := NewEngine(ds.Cube, users, EngineOptions{Planar: planar})
			if _, err := e.AddRules(`Rule:near When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`); err != nil {
				b.Fatal(err)
			}
			loc := ds.CityLocs[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := e.StartSession("u", loc)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.EndSession(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedScan measures the sharded fact-table executor: the same
// eight-query dashboard batch answered by the single-table engine
// (FactShards 1 — exactly the pre-shard path) vs scatter-gather over
// hash-partitioned shards. Results are identical across rows; the win is
// per-shard parallelism (on multi-CPU hosts) and per-shard ingest locks.
func BenchmarkShardedScan(b *testing.B) {
	env := getBenchEnv(b, 200000)
	var qs []Query
	for _, level := range []string{"Store", "City", "State", "Country"} {
		for _, measure := range []string{"UnitSales", "StoreSales"} {
			qs = append(qs, Query{
				Fact:       "Sales",
				GroupBy:    []LevelRef{{Dimension: "Store", Level: level}},
				Aggregates: []MeasureAgg{{Measure: measure, Agg: SUM}},
			})
		}
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			users, err := NewSalesUserStore(map[string]string{"alice": "RegionalSalesManager"})
			if err != nil {
				b.Fatal(err)
			}
			e := NewEngine(env.ds.Cube, users, EngineOptions{FactShards: shards, QueryWorkers: 2})
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.ExecuteBatch(qs, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceOverhead measures the query-lifecycle telemetry at its
// three settings over the same personalized query: off (TraceSampleRate
// 0 — no tracer exists and queries carry no trace, the default
// production path), sampled (1% — the recommended deployed setting),
// and always (rate 1 — every query builds and retains its span tree).
// The off mode's ns/op is gated against the previous artifact by
// scripts/bench.sh (-nsop-gate): the subsystem's claim is that not
// using it costs nothing, and wall time is exactly the metric for that.
// Latency histograms are unconditionally on in all three modes, so the
// off row also prices the metrics path.
func BenchmarkTraceOverhead(b *testing.B) {
	env := getBenchEnv(b, 20000)
	for _, mode := range []struct {
		name string
		rate float64
	}{{"off", 0}, {"sampled", 0.01}, {"always", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			users, err := NewSalesUserStore(map[string]string{"alice": "RegionalSalesManager"})
			if err != nil {
				b.Fatal(err)
			}
			e := NewEngine(env.ds.Cube, users, EngineOptions{TraceSampleRate: mode.rate})
			defer e.Close()
			s, err := e.StartSession("alice", env.ds.CityLocs[0])
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// What the HTTP layer does per request: start a trace (nil
				// when tracing is off), ride it in on the context, finish it.
				tr := e.Tracer().Start("")
				ctx := obs.NewContext(context.Background(), tr)
				if _, err := s.QueryCtx(ctx, familyQuery); err != nil {
					b.Fatal(err)
				}
				tr.Finish(nil)
			}
		})
	}
}

// BenchmarkCostAccountingOverhead measures what per-tenant cost
// accounting adds to a scan-bound query: the same scheduler and query
// with no accountant (off — no scan-stage timing, no attribution, the
// pre-accounting fast path) versus a wired accountant (on — stage
// timings snapshotted, CPU split across the batch, tenant account and
// heavy-query profile updated per query). The on mode's ns/op is gated
// against the previous artifact by scripts/bench.sh (-nsop-gate): the
// subsystem's claim is that metering every query costs low single-digit
// percent on a PackedScan-class scan, and wall time is the metric.
// The result cache stays off so every iteration pays a real scan.
func BenchmarkCostAccountingOverhead(b *testing.B) {
	env := getBenchEnv(b, 20000)
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var acct *obs.Accountant
			if mode.on {
				acct = obs.NewAccountant(obs.AccountantOptions{})
			}
			s := qsched.New(env.ds.Cube, qsched.Options{Costs: acct})
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Submit(familyQuery, nil, "alice"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFairAdmissionOverhead measures what the cost-driven fair
// admission ledger adds to a scan-bound query: the same scheduler and
// query with one tenant (a single ledger entry, the common case) versus
// eight tenants submitting round-robin (every batch slot scans all eight
// scores, every settle updates a distinct ledger). Both modes pay the
// debit/settle protocol; the tenants=8 mode additionally pays the
// per-slot min-score scan. ns/op is gated against the previous artifact
// by scripts/bench.sh (-nsop-gate): the fairness machinery's claim is
// that it prices admission, not queries — overhead must stay noise
// against a real scan. The result cache stays off so every iteration
// pays one.
func BenchmarkFairAdmissionOverhead(b *testing.B) {
	env := getBenchEnv(b, 20000)
	for _, tenants := range []int{1, 8} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			users := make([]string, tenants)
			for i := range users {
				users[i] = fmt.Sprintf("tenant%02d", i)
			}
			s := qsched.New(env.ds.Cube, qsched.Options{})
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Submit(familyQuery, nil, users[i%tenants]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkArtifactCacheHit measures the cross-batch artifact cache: a
// sharing-heavy batch repeated against an unchanged table must take its
// filter bitmap and key columns from the cache instead of re-materializing
// them every scan (cold = no cache, warm = cache primed by the first run).
func BenchmarkArtifactCacheHit(b *testing.B) {
	env := getBenchEnv(b, 200000)
	filters := []AttrFilter{{
		LevelRef: LevelRef{Dimension: "Store", Level: "City"},
		Attr:     "population", Op: OpGt, Value: float64(100000),
	}}
	var qs []Query
	for _, level := range []string{"Store", "City", "State", "Country"} {
		for _, measure := range []string{"UnitSales", "StoreSales"} {
			qs = append(qs, Query{
				Fact:       "Sales",
				GroupBy:    []LevelRef{{Dimension: "Store", Level: level}},
				Aggregates: []MeasureAgg{{Measure: measure, Agg: SUM}},
				Filters:    filters,
			})
		}
	}
	for _, cached := range []bool{false, true} {
		name := "cold"
		if cached {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			users, err := NewSalesUserStore(map[string]string{"alice": "RegionalSalesManager"})
			if err != nil {
				b.Fatal(err)
			}
			opts := EngineOptions{QueryWorkers: 2}
			if cached {
				opts.ArtifactCacheBytes = 64 << 20
			}
			e := NewEngine(env.ds.Cube, users, opts)
			defer e.Close()
			// Prime twice: the artifact cache's admission doorkeeper only
			// caches a fingerprint offered at least twice (warm mode needs
			// the second batch to actually populate the cache).
			for i := 0; i < 2; i++ {
				if _, err := e.ExecuteBatch(qs, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.ExecuteBatch(qs, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if cached {
				st := e.SchedulerStats()
				if st.ArtifactCache.Hits < int64(b.N) {
					b.Fatalf("artifact cache hits = %d, want >= %d", st.ArtifactCache.Hits, b.N)
				}
			}
		})
	}
}

// BenchmarkPackedScan is the A/B price of the compressed column layer on
// the hot single-query scan shape (the BenchmarkParallelScan query,
// serial): packed=true drives the monomorphic single-level SUM kernel
// over the dictionary-encoded bit-packed key column, packed=false the
// unpacked scalar path. Results are byte-identical; the packed=true
// ns/op is gated against the previous artifact by scripts/bench.sh
// (-nsop-gate) — the kernel must stay fast, not just correct.
func BenchmarkPackedScan(b *testing.B) {
	env := getBenchEnv(b, 200000)
	q := Query{
		Fact:       "Sales",
		GroupBy:    []LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: SUM}},
	}
	prev := env.ds.Cube.PackedColumns()
	defer env.ds.Cube.SetPackedColumns(prev)
	for _, packed := range []bool{true, false} {
		b.Run(fmt.Sprintf("packed=%v", packed), func(b *testing.B) {
			env.ds.Cube.SetPackedColumns(packed)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.ds.Cube.ExecuteParallel(q, nil, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPackedPredicateKernel measures stage-1 predicate evaluation
// word-at-a-time: a batch whose queries share one numeric attribute
// filter, so the per-predicate planner materializes the filter bitmap
// once per scan — packed=true fills it with the SWAR range kernel over
// the bit-packed key column (64/width lanes per load), packed=false
// tests every fact's key against the ancestor table one at a time.
func BenchmarkPackedPredicateKernel(b *testing.B) {
	env := getBenchEnv(b, 200000)
	filters := []AttrFilter{{
		LevelRef: LevelRef{Dimension: "Store", Level: "City"},
		Attr:     "population", Op: OpGt, Value: float64(100000),
	}}
	var qs []Query
	for _, level := range []string{"City", "State"} {
		qs = append(qs, Query{
			Fact:       "Sales",
			GroupBy:    []LevelRef{{Dimension: "Store", Level: level}},
			Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: SUM}},
			Filters:    filters,
		})
	}
	prev := env.ds.Cube.PackedColumns()
	defer env.ds.Cube.SetPackedColumns(prev)
	for _, packed := range []bool{true, false} {
		b.Run(fmt.Sprintf("packed=%v", packed), func(b *testing.B) {
			env.ds.Cube.SetPackedColumns(packed)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := env.ds.Cube.ExecuteBatchOpt(qs, nil, BatchOptions{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

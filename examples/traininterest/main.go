// Command traininterest reproduces the paper's Example 5.3 in full: the
// system watches the decision maker's spatial selections, learns their
// interest in cities near airports (the AirportCity degree counter of the
// Fig. 4 user model), and — once the interest exceeds the designer's
// threshold — starts enriching their sessions with the Train layer and the
// cities that have a short rail connection to an airport.
//
// Run with: go run ./examples/traininterest
package main

import (
	"fmt"
	"log"

	"sdwp"
)

const nearAirports = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km"

func main() {
	ds, err := sdwp.GenerateData(sdwp.DefaultDataConfig())
	if err != nil {
		log.Fatal(err)
	}
	users, err := sdwp.NewSalesUserStore(map[string]string{"dana": "RegionalSalesManager"})
	if err != nil {
		log.Fatal(err)
	}
	engine := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{})
	defer engine.Close()
	engine.SetParam("threshold", sdwp.Number(2))
	if _, err := engine.AddRules(sdwp.PaperRules); err != nil {
		log.Fatal(err)
	}

	// Dana's office sits in City000, which (for the default seed) is both
	// served by a train line and near an airport — so her 5 km store
	// selection and the train-connected city selection overlap.
	office := ds.CityLocs[0]
	degree := func() float64 {
		v, err := engine.Users().Get("dana").Resolve([]string{"dm2airportcity", "degree"})
		if err != nil {
			log.Fatal(err)
		}
		return v.(float64)
	}

	// Sessions 1-3: dana keeps selecting cities near airports; the
	// IntAirportCity tracking rule raises her interest degree each time.
	for round := 1; round <= 3; round++ {
		s, err := engine.StartSession("dana", office)
		if err != nil {
			log.Fatal(err)
		}
		if _, ok := s.Schema().Layer("Train"); ok {
			fmt.Printf("session %d: train layer present before it should be!\n", round)
		}
		sel, err := s.SpatialSelect("GeoMD.Store.City", nearAirports)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session %d: selected %d airport cities, fired %v, interest degree now %.0f\n",
			round, len(sel.Selected), sel.RulesFired, degree())
		if err := engine.EndSession(s); err != nil {
			log.Fatal(err)
		}
	}

	// Session 4: degree (3) exceeds the threshold (2) — the
	// TrainAirportCity rule enriches the schema and pre-selects the cities
	// with a rail connection to an airport (< 50 km along the line).
	s, err := engine.StartSession("dana", office)
	if err != nil {
		log.Fatal(err)
	}
	layer, hasTrain := s.Schema().Layer("Train")
	fmt.Printf("\nsession 4: train layer added = %v (%s)\n", hasTrain, layer.Geom)
	cityMask := s.View().LevelMask("Store", "City")
	fmt.Printf("session 4: %d train-connected cities pre-selected:\n", cityMask.Count())
	cities := engine.Cube().Dimension("Store").Level("City")
	shown := 0
	for _, idx := range cityMask.Indices() {
		fmt.Printf("   %s\n", cities.Name(int32(idx)))
		shown++
		if shown == 8 {
			fmt.Println("   …")
			break
		}
	}

	// The succeeding OLAP analysis (any BI tool, spatial or not) now works
	// on exactly those cities.
	res, err := s.Query(sdwp.Query{
		Fact:       "Sales",
		GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []sdwp.MeasureAgg{{Measure: "UnitSales", Agg: sdwp.SUM}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsales analysis over the personalized instance: %d cities, %d of %d facts\n",
		len(res.Rows), res.MatchedFacts, res.ScannedFacts)
}

// Command logistics shows personalization rules beyond the paper's worked
// examples, using the same machinery: a logistics planner's profile pulls
// the Highway LINE layer into their model, restricts analysis to stores
// within 10 km of a highway (a line-distance condition), summarizes the
// selected stores per city (spatial aggregation: centroid, bounds, convex
// hull), and exports the personalized map as GeoJSON.
//
// Run with: go run ./examples/logistics [-geojson out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"sdwp"
	"sdwp/internal/export"
)

const logisticsRules = `
// Schema rule: planners think in terms of the road network.
Rule:roadNetwork When SessionStart do
  If (SUS.DecisionMaker.dm2role.name = 'LogisticsPlanner') then
    AddLayer('Highway', LINE)
    BecomeSpatial(MD.Sales.Store.geometry, POINT)
  endIf
endWhen

// Instance rule: only stores that trucks can actually reach matter.
Rule:reachableStores When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, GeoMD.Highway.geometry) < 10km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen
`

func main() {
	geojsonOut := flag.String("geojson", "", "write the personalized map to this file")
	flag.Parse()

	ds, err := sdwp.GenerateData(sdwp.DefaultDataConfig())
	if err != nil {
		log.Fatal(err)
	}
	users, err := sdwp.NewSalesUserStore(map[string]string{"erik": "LogisticsPlanner"})
	if err != nil {
		log.Fatal(err)
	}
	engine := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{})
	defer engine.Close()
	if _, err := engine.AddRules(logisticsRules); err != nil {
		log.Fatal(err)
	}

	s, err := engine.StartSession("erik", ds.CityLocs[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema delta:")
	for _, d := range s.Schema().Diff(engine.Cube().Schema()) {
		fmt.Println("  " + d)
	}
	mask := s.View().LevelMask("Store", "Store")
	fmt.Printf("stores within 10 km of a highway: %d of %d\n", mask.Count(), len(ds.StoreLocs))

	// Spatial aggregation: where do the reachable stores cluster?
	rows, err := engine.Cube().SpatialSummary("Store", "Store", "City", s.View())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %7s %22s %8s\n", "city", "stores", "centroid (lon,lat)", "hull")
	shown := 0
	for _, r := range rows {
		fmt.Printf("%-10s %7d %11.3f,%8.3f %8s\n",
			r.Group, r.Count, r.Centroid.X, r.Centroid.Y, r.Hull.Type())
		shown++
		if shown == 8 {
			fmt.Printf("… (%d more cities)\n", len(rows)-shown)
			break
		}
	}

	// The planner's freight-volume analysis over the reachable network.
	res, err := s.Query(sdwp.Query{
		Fact:       "Sales",
		GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: "State"}},
		Aggregates: []sdwp.MeasureAgg{{Measure: "UnitSales", Agg: sdwp.SUM}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreachable freight volume by state (%d of %d facts):\n",
		res.MatchedFacts, engine.Cube().FactData("Sales").Len())
	for _, row := range res.Rows {
		fmt.Printf("  %-10s %9.0f\n", row.Groups[0], row.Values[0])
	}

	// Export the personalized map (simplified highways, selected stores).
	fc, err := export.Session(s, export.Options{SimplifyTolerance: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGeoJSON export: %d features", len(fc.Features))
	if *geojsonOut != "" {
		data, err := json.MarshalIndent(fc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*geojsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" → %s", *geojsonOut)
	}
	fmt.Println()
}

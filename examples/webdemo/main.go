// Command webdemo runs the personalization engine behind its HTTP API (the
// paper's web deployment shape) and drives one complete client session
// against it: login (rules fire), schema inspection, a personalized OLAP
// query, and a spatial selection that updates the user profile.
//
// By default the demo binds an ephemeral port, runs its scripted client,
// prints every exchange, and exits. Pass -listen :8080 to keep the server
// running for manual exploration with curl.
//
// Run with: go run ./examples/webdemo
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"sdwp"
)

func main() {
	listen := flag.String("listen", "", "address to keep serving on (empty: run scripted demo and exit)")
	flag.Parse()

	ds, err := sdwp.GenerateData(sdwp.DefaultDataConfig())
	if err != nil {
		log.Fatal(err)
	}
	users, err := sdwp.NewSalesUserStore(map[string]string{
		"alice": "RegionalSalesManager",
		"bob":   "Accountant",
	})
	if err != nil {
		log.Fatal(err)
	}
	engine := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{})
	defer engine.Close()
	engine.SetParam("threshold", sdwp.Number(2))
	if _, err := engine.AddRules(sdwp.PaperRules); err != nil {
		log.Fatal(err)
	}
	handler := sdwp.NewHTTPServer(engine)

	if *listen != "" {
		fmt.Printf("serving on %s — try:\n", *listen)
		fmt.Println(`  curl -s -X POST localhost` + *listen + `/api/login -d '{"user":"alice","locationWKT":"POINT (-0.48 38.34)"}'`)
		log.Fatal(http.ListenAndServe(*listen, handler))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	defer srv.Close()

	post := func(path string, body any) map[string]any {
		data, _ := json.Marshal(body)
		fmt.Printf("\nPOST %s\n  → %s\n", path, data)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		out := map[string]any{}
		raw, _ := io.ReadAll(resp.Body)
		_ = json.Unmarshal(raw, &out)
		short := string(raw)
		if len(short) > 300 {
			short = short[:300] + "…"
		}
		fmt.Printf("  ← %s %s\n", resp.Status, short)
		return out
	}

	loc := ds.CityLocs[0]
	login := post("/api/login", map[string]string{
		"user":        "alice",
		"locationWKT": fmt.Sprintf("POINT (%f %f)", loc.X, loc.Y),
	})
	token, _ := login["session"].(string)
	if token == "" {
		log.Fatal("login failed")
	}

	post("/api/query", map[string]any{
		"session":    token,
		"fact":       "Sales",
		"groupBy":    []map[string]string{{"dimension": "Product", "level": "Family"}},
		"aggregates": []map[string]string{{"measure": "UnitSales", "agg": "SUM"}},
	})

	post("/api/select", map[string]string{
		"session":   token,
		"target":    "GeoMD.Store.City",
		"predicate": "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km",
	})

	fmt.Printf("\nGET /api/profile?user=alice\n")
	resp, err := http.Get(base + "/api/profile?user=alice")
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("  ← %s %s\n", resp.Status, raw)

	post("/api/logout", map[string]string{"session": token})
	fmt.Println("\ndemo complete")
}

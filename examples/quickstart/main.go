// Command quickstart walks the paper's Fig. 1 personalization process end
// to end on a small synthetic warehouse:
//
//  1. build the Fig. 2 sales MD model and load data,
//  2. register the paper's Section 5 PRML rules,
//  3. log two users in (a regional sales manager and an accountant),
//  4. show how the manager's session gets the Fig. 6 GeoMD schema and a
//     personalized cube view while the accountant's stays untouched,
//  5. run the same OLAP query through both views.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sdwp"
)

func main() {
	// 1. Synthetic warehouse over the Fig. 2 schema (deterministic seed).
	cfg := sdwp.DefaultDataConfig()
	ds, err := sdwp.GenerateData(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warehouse: %d stores, %d cities, %d sales facts\n",
		len(ds.StoreLocs), len(ds.CityLocs), ds.Cube.FactData("Sales").Len())

	// 2. Users (Fig. 4 profile) and the paper's rules.
	users, err := sdwp.NewSalesUserStore(map[string]string{
		"alice": "RegionalSalesManager",
		"bob":   "Accountant",
	})
	if err != nil {
		log.Fatal(err)
	}
	engine := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{})
	defer engine.Close()
	engine.SetParam("threshold", sdwp.Number(2))
	if _, err := engine.AddRules(sdwp.PaperRules); err != nil {
		log.Fatal(err)
	}

	// 3. The users log in from different cities: the 5kmStores instance
	// rule uses each decision maker's own location context.
	alice, err := engine.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		log.Fatal(err)
	}
	bob, err := engine.StartSession("bob", ds.CityLocs[1])
	if err != nil {
		log.Fatal(err)
	}

	// 4. Schema personalization (Fig. 2 → Fig. 6 for the manager only).
	fmt.Println("\nalice's schema delta (manager):")
	for _, d := range alice.Schema().Diff(engine.Cube().Schema()) {
		fmt.Println("  ", d)
	}
	fmt.Println("bob's schema delta (accountant):")
	if diff := bob.Schema().Diff(engine.Cube().Schema()); len(diff) == 0 {
		fmt.Println("   (none — personalization is per decision maker)")
	}

	// 5. The same query through each personalized view.
	q := sdwp.Query{
		Fact:       "Sales",
		GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []sdwp.MeasureAgg{{Measure: "UnitSales", Agg: sdwp.SUM}},
	}
	for name, s := range map[string]*sdwp.Session{"alice": alice, "bob": bob} {
		res, err := s.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s sees %d of %d facts (%d city rows):\n",
			name, res.MatchedFacts, res.ScannedFacts, len(res.Rows))
		for i, row := range res.Rows {
			if i == 5 {
				fmt.Println("   …")
				break
			}
			fmt.Printf("   %-10s %8.0f\n", row.Groups[0], row.Values[0])
		}
	}
}

// Command airportpromo reproduces the paper's motivating scenario
// (Section 3 + Examples 5.1 and 5.2): the sales department plans a
// promotion for customers near airports; the regional sales manager needs
// (a) the airports layer and spatial stores in their model, and (b) only
// the stores around their own location in the analysis.
//
// The program compares the manager's personalized analysis against the
// non-personalized baseline — the quantitative version of the paper's claim
// that personalization avoids "exploring a large and complex SDW".
//
// Run with: go run ./examples/airportpromo
package main

import (
	"fmt"
	"log"
	"time"

	"sdwp"
)

func main() {
	cfg := sdwp.DefaultDataConfig()
	cfg.Stores = 2000
	cfg.Sales = 200000
	ds, err := sdwp.GenerateData(cfg)
	if err != nil {
		log.Fatal(err)
	}
	users, err := sdwp.NewSalesUserStore(map[string]string{"carol": "RegionalSalesManager"})
	if err != nil {
		log.Fatal(err)
	}
	engine := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{})
	defer engine.Close()
	engine.SetParam("threshold", sdwp.Number(2))
	if _, err := engine.AddRules(sdwp.PaperRules); err != nil {
		log.Fatal(err)
	}

	// Carol logs in from her regional office (a city centre).
	office := ds.CityLocs[7]
	start := time.Now()
	s, err := engine.StartSession("carol", office)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session start (4 rules over %d stores): %v\n",
		cfg.Stores, time.Since(start).Round(time.Microsecond))

	// Example 5.1's effect: the Fig. 6 schema.
	fmt.Println("\npersonalized GeoMD schema delta:")
	for _, d := range s.Schema().Diff(engine.Cube().Schema()) {
		fmt.Println("  ", d)
	}

	// Example 5.2's effect: the 5 km store selection.
	mask := s.View().LevelMask("Store", "Store")
	fmt.Printf("\nstores within 5 km of the office: %d of %d\n", mask.Count(), cfg.Stores)

	// The promotion analysis: sales near the office, by product family,
	// through the personalized view vs the whole warehouse.
	q := sdwp.Query{
		Fact:       "Sales",
		GroupBy:    []sdwp.LevelRef{{Dimension: "Product", Level: "Family"}},
		Aggregates: []sdwp.MeasureAgg{{Measure: "StoreSales", Agg: sdwp.SUM}, {Agg: sdwp.COUNT}},
	}
	t0 := time.Now()
	personalized, err := s.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	tPers := time.Since(t0)
	t0 = time.Now()
	baseline, err := s.QueryBaseline(q)
	if err != nil {
		log.Fatal(err)
	}
	tBase := time.Since(t0)

	fmt.Printf("\n%-14s %14s %10s\n", "family", "near-office", "all-stores")
	for i, row := range personalized.Rows {
		fmt.Printf("%-14s %14.0f %10.0f\n", row.Groups[0], row.Values[0], baseline.Rows[i].Values[0])
	}
	fmt.Printf("\nfacts in analysis: personalized %d vs baseline %d (%.1fx reduction)\n",
		personalized.MatchedFacts, baseline.MatchedFacts,
		float64(baseline.MatchedFacts)/float64(personalized.MatchedFacts))
	fmt.Printf("query latency:     personalized %v vs baseline %v\n",
		tPers.Round(time.Microsecond), tBase.Round(time.Microsecond))

	// And the promotion target itself: stores near an airport, found with
	// an interactive spatial selection (no extra rule needed).
	sel, err := s.SpatialSelect("GeoMD.Store",
		"Distance(GeoMD.Store.geometry, GeoMD.Airport.geometry) < 15km")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstores within 15 km of an airport (promotion candidates): %d\n", len(sel.Selected))
}

package sdwp_test

// Godoc examples for the public facade.

import (
	"fmt"
	"log"

	"sdwp"
)

// ExampleParseRules shows parsing, classifying and canonically reprinting
// PRML rules.
func ExampleParseRules() {
	rules, err := sdwp.ParseRules(`
Rule:addSpatiality When SessionStart do
  If (SUS.DecisionMaker.dm2role.name = 'RegionalSalesManager') then
    AddLayer('Airport', POINT)
    BecomeSpatial(MD.Sales.Store.geometry, POINT)
  endIf
endWhen`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sdwp.FormatRules(rules...))
	// Output:
	// Rule:addSpatiality When SessionStart do
	//   If ((SUS.DecisionMaker.dm2role.name = 'RegionalSalesManager')) then
	//     AddLayer('Airport', POINT)
	//     BecomeSpatial(MD.Sales.Store.geometry, POINT)
	//   endIf
	// endWhen
}

// ExampleNewSchemaBuilder builds a tiny multidimensional model and runs an
// aggregation.
func ExampleNewSchemaBuilder() {
	b := sdwp.NewSchemaBuilder("TinyDW")
	b.Dimension("Region").Level("Shop", "name").Level("Area", "name")
	b.Fact("Visits").Measure("Count").Uses("Region")
	md, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	c := sdwp.NewCube(sdwp.WrapGeo(md))
	north, _ := c.AddMember("Region", "Area", "North", -1)
	shop, _ := c.AddMember("Region", "Shop", "S1", north)
	_ = c.AddFact("Visits", map[string]int32{"Region": shop}, map[string]float64{"Count": 3})
	_ = c.AddFact("Visits", map[string]int32{"Region": shop}, map[string]float64{"Count": 4})

	res, err := c.Execute(sdwp.Query{
		Fact:       "Visits",
		GroupBy:    []sdwp.LevelRef{{Dimension: "Region", Level: "Area"}},
		Aggregates: []sdwp.MeasureAgg{{Measure: "Count", Agg: sdwp.SUM}},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s: %.0f\n", row.Groups[0], row.Values[0])
	}
	// Output:
	// North: 7
}

// ExampleHaversineKm computes a great-circle distance.
func ExampleHaversineKm() {
	alicante := sdwp.Pt(-0.4810, 38.3452)
	madrid := sdwp.Pt(-3.7038, 40.4168)
	fmt.Printf("%.1f km\n", sdwp.HaversineKm(alicante, madrid))
	// Output:
	// 360.2 km
}

// ExampleEngine_StartSession runs the paper's Fig. 1 process for one user.
func ExampleEngine_StartSession() {
	cfg := sdwp.DefaultDataConfig()
	cfg.Cities = 10
	cfg.Stores = 40
	cfg.Customers = 20
	cfg.Sales = 500
	ds, err := sdwp.GenerateData(cfg)
	if err != nil {
		log.Fatal(err)
	}
	users, err := sdwp.NewSalesUserStore(map[string]string{"alice": "RegionalSalesManager"})
	if err != nil {
		log.Fatal(err)
	}
	engine := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{})
	engine.SetParam("threshold", sdwp.Number(2))
	if _, err := engine.AddRules(sdwp.PaperRules); err != nil {
		log.Fatal(err)
	}
	s, err := engine.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range s.Schema().Diff(engine.Cube().Schema()) {
		fmt.Println(d)
	}
	// Output:
	// +SpatialLevel Store.Store POINT
	// +Layer Airport POINT
}

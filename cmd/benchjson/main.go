// Command benchjson turns `go test -bench` output into the repo's
// benchmark-regression artifact (BENCH_<n>.json): one record per
// benchmark with its iteration count and every reported metric (ns/op,
// B/op, allocs/op, plus custom b.ReportMetric units such as preds/mask
// or queries/scan).
//
// It reads the benchmark stream on stdin, echoes it to stderr (so CI
// logs keep the raw numbers), and fails when a benchmark named in the
// manifest produced no results — a renamed or deleted benchmark then
// breaks the pipeline loudly instead of silently dropping its perf
// trajectory. With -baseline it additionally compares allocs/op per
// benchmark against the previous artifact and fails past -alloc-tolerance,
// so allocation regressions (a pool no longer hit, an artifact no longer
// released) break CI instead of drifting the trajectory; -nsop-gate opts
// named benchmarks into a ns/op comparison too (the tracing-overhead
// proof — see BenchmarkTraceOverhead). The run's
// -benchtime/-count settings are recorded in the artifact so readers can
// tell a 1x smoke pass from a duration-based measurement.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchtime 1s . | \
//	  go run ./cmd/benchjson -issue 6 -out BENCH_6.json \
//	    -benchtime 1s -baseline BENCH_5.json \
//	    -manifest BenchmarkSharedSubexprBatch,BenchmarkShardedScan,...
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// benchResult is one benchmark line: name (sub-benchmark path included,
// GOMAXPROCS suffix stripped), iteration count, and metric → value.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// report is the emitted artifact.
type report struct {
	Issue     int    `json:"issue"`
	Generated string `json:"generated"`
	// Benchtime and Count record the `go test` settings of the run, so a
	// reader of the artifact can tell a 1x smoke pass (whose per-op numbers
	// carry cold-start noise — see the BENCH_5 workers=1/shared allocation
	// mirage) from a duration-based measurement.
	Benchtime  string        `json:"benchtime,omitempty"`
	Count      int           `json:"count,omitempty"`
	GoOS       string        `json:"goos,omitempty"`
	GoArch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*\S)\s*$`)

func main() {
	out := flag.String("out", "BENCH_6.json", "output JSON path")
	issue := flag.Int("issue", 6, "issue number recorded in the artifact")
	manifest := flag.String("manifest", "",
		"comma-separated benchmark names that MUST appear in the input (prefix match; fail otherwise)")
	benchtime := flag.String("benchtime", "", "go test -benchtime value of this run, recorded in the artifact")
	count := flag.Int("count", 0, "go test -count value of this run, recorded in the artifact")
	baseline := flag.String("baseline", "",
		"previous BENCH_<n>.json to compare allocs/op against (missing file warns and skips)")
	allocTol := flag.Float64("alloc-tolerance", 0.15,
		"allowed fractional allocs/op growth over -baseline before failing")
	nsopGate := flag.String("nsop-gate", "",
		"regexp of benchmark names whose ns/op is ALSO gated against -baseline (empty = none: wall time is too noisy to gate broadly; scope this to overhead-proof benchmarks such as ^BenchmarkTraceOverhead)")
	nsopTol := flag.Float64("nsop-tolerance", 0.30,
		"allowed fractional ns/op growth over -baseline for -nsop-gate benchmarks")
	flag.Parse()

	rep := report{Issue: *issue, Generated: time.Now().UTC().Format(time.RFC3339),
		Benchtime: *benchtime, Count: *count}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			rep.GoOS = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			rep.GoArch = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = v
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := benchResult{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		// The tail is value/unit pairs: "123 ns/op  45 B/op  6 allocs/op".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // not a metric tail (e.g. a log line that slipped in)
			}
			res.Metrics[fields[i+1]] = v
		}
		if len(res.Metrics) > 0 {
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	// Manifest gate: every required benchmark must have produced at least
	// one result (sub-benchmarks extend the name, so prefix-match).
	var missing []string
	for _, want := range strings.Split(*manifest, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, b := range rep.Benchmarks {
			if b.Name == want || strings.HasPrefix(b.Name, want+"/") {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: manifest benchmarks missing from input: %s\n",
			strings.Join(missing, ", "))
		fmt.Fprintln(os.Stderr, "benchjson: a renamed or deleted benchmark must be updated in scripts/bench.sh")
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark results to %s\n", len(rep.Benchmarks), *out)

	// Regression gates against the previous artifact. The artifact above
	// is written regardless, so a failing run still leaves its numbers
	// behind for inspection. allocs/op is gated for every benchmark: it is
	// deterministic for a given code path, so growth there is a real
	// regression (a pool stopped being hit, an artifact stopped being
	// released), not scheduler jitter. ns/op is too noisy on shared
	// runners to gate broadly, but -nsop-gate opts specific benchmarks in
	// (with a looser tolerance) — the overhead-proof ones, where "tracing
	// off costs nothing" is the claim under test and wall time IS the
	// metric.
	if *baseline != "" {
		code := compareMetric(*baseline, &rep, "allocs/op", nil, *allocTol, 0.5)
		if *nsopGate != "" {
			re, err := regexp.Compile(*nsopGate)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad -nsop-gate %q: %v\n", *nsopGate, err)
				os.Exit(1)
			}
			if c := compareMetric(*baseline, &rep, "ns/op", re, *nsopTol, 0); c != 0 {
				code = c
			}
		}
		if code != 0 {
			os.Exit(code)
		}
	}
}

// compareMetric returns a non-zero exit code when any benchmark present in
// both artifacts (and matching `only`, when non-nil) grew the given metric
// beyond the tolerance. grace is an absolute allowance on top of the
// fractional one (0.5 for allocs/op: never fail tiny counts on a single
// alloc). A missing or unreadable baseline — or a benchmark absent from it
// — warns and passes: the gate compares trajectories, it does not invent
// one on first run.
func compareMetric(path string, cur *report, metric string, only *regexp.Regexp, tol, grace float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s unreadable (%v); skipping %s comparison\n", path, err, metric)
		return 0
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s unparsable (%v); skipping %s comparison\n", path, err, metric)
		return 0
	}
	baseVals := map[string]float64{}
	for _, b := range base.Benchmarks {
		if v, ok := b.Metrics[metric]; ok {
			baseVals[b.Name] = v
		}
	}
	regressed := 0
	compared := 0
	for _, b := range cur.Benchmarks {
		if only != nil && !only.MatchString(b.Name) {
			continue
		}
		curV, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		baseV, ok := baseVals[b.Name]
		if !ok {
			if only != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s absent from baseline %s; its %s gate starts next run\n",
					b.Name, path, metric)
			}
			continue // new benchmark: no trajectory yet
		}
		compared++
		if curV > baseV*(1+tol)+grace {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.1f %s vs baseline %.1f (+%.1f%%, tolerance %.0f%%)\n",
				b.Name, curV, metric, baseV, 100*(curV-baseV)/baseV, 100*tol)
			regressed++
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: compared %s for %d benchmarks against %s (issue %d): %d regressed\n",
		metric, compared, path, base.Issue, regressed)
	if regressed > 0 {
		return 1
	}
	return 0
}

// Command sdwctl is the warehouse operator's toolbox:
//
//	sdwctl schema                       render the Fig. 2 base schema
//	sdwctl gen [-seed N -stores N ...]  generate a dataset and print stats
//	sdwctl check FILE.prml              parse + statically analyze rules
//	sdwctl fmt FILE.prml                reprint rules in canonical form
//	sdwctl map [-user U -svg map.svg]     render a session's personalized map
//	sdwctl simulate [-user U -role R -lon X -lat Y]
//	                                    run a personalized session and show
//	                                    the schema delta, view and a query
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"sdwp"
	"sdwp/internal/datagen"
	"sdwp/internal/export"
	"sdwp/internal/prml"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdwctl: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "schema":
		fmt.Print(sdwp.SalesSchema().Render())
	case "gen":
		cmdGen(os.Args[2:])
	case "check":
		cmdCheck(os.Args[2:], false)
	case "fmt":
		cmdCheck(os.Args[2:], true)
	case "simulate":
		cmdSimulate(os.Args[2:])
	case "map":
		cmdMap(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sdwctl <schema|gen|check|fmt|simulate|map> [flags]")
	os.Exit(2)
}

// cmdMap runs a personalized session and writes its map as SVG (and
// optionally GeoJSON) — the quickest way to *see* what a rule set gives a
// user.
func cmdMap(args []string) {
	fs := flag.NewFlagSet("map", flag.ExitOnError)
	user := fs.String("user", "alice", "user id")
	role := fs.String("role", "RegionalSalesManager", "user role characteristic")
	rulesPath := fs.String("rules", "", "PRML rule file (default: paper rules)")
	svgOut := fs.String("svg", "map.svg", "SVG output file")
	geojsonOut := fs.String("geojson", "", "optional GeoJSON output file")
	width := fs.Int("width", 1000, "SVG width in pixels")
	_ = fs.Parse(args)

	ds, err := sdwp.GenerateData(sdwp.DefaultDataConfig())
	if err != nil {
		log.Fatal(err)
	}
	users, err := sdwp.NewSalesUserStore(map[string]string{*user: *role})
	if err != nil {
		log.Fatal(err)
	}
	engine := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{})
	defer engine.Close()
	engine.SetParam("threshold", sdwp.Number(2))
	src := sdwp.PaperRules
	if *rulesPath != "" {
		data, err := os.ReadFile(*rulesPath)
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
	}
	if _, err := engine.AddRules(src); err != nil {
		log.Fatal(err)
	}
	s, err := engine.StartSession(*user, ds.CityLocs[0])
	if err != nil {
		log.Fatal(err)
	}
	svg, err := export.SessionSVG(s, export.SVGOptions{Width: *width})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("map written to %s (%d bytes)\n", *svgOut, len(svg))
	if *geojsonOut != "" {
		fc, err := export.Session(s, export.Options{})
		if err != nil {
			log.Fatal(err)
		}
		data, err := json.MarshalIndent(fc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*geojsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("geojson written to %s (%d features)\n", *geojsonOut, len(fc.Features))
	}
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "dataset seed")
	cities := fs.Int("cities", 0, "cities (0 = default)")
	stores := fs.Int("stores", 0, "stores (0 = default)")
	sales := fs.Int("sales", 0, "sales facts (0 = default)")
	out := fs.String("out", "", "write the warehouse snapshot (JSON) to this file")
	_ = fs.Parse(args)

	cfg := sdwp.DefaultDataConfig()
	cfg.Seed = *seed
	if *cities > 0 {
		cfg.Cities = *cities
	}
	if *stores > 0 {
		cfg.Stores = *stores
	}
	if *sales > 0 {
		cfg.Sales = *sales
	}
	ds, err := sdwp.GenerateData(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c := ds.Cube
	fmt.Printf("dimensions:\n")
	for _, d := range c.Schema().MD.Dimensions {
		dd := c.Dimension(d.Name)
		fmt.Printf("  %-10s", d.Name)
		for i := 0; i < dd.NumLevels(); i++ {
			fmt.Printf("  %s=%d", dd.LevelName(i), dd.LevelAt(i).Len())
		}
		fmt.Println()
	}
	fmt.Printf("facts:\n  Sales=%d\n", c.FactData("Sales").Len())
	fmt.Printf("geographic catalog:\n")
	for _, name := range []string{datagen.LayerAirport, datagen.LayerTrain, datagen.LayerHospital, datagen.LayerHighway} {
		if l := c.Layer(name); l != nil {
			fmt.Printf("  %-10s %-6s %d objects\n", name, l.Type(), l.Len())
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.WriteSnapshot(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		info, _ := os.Stat(*out)
		fmt.Printf("snapshot written to %s (%d bytes)\n", *out, info.Size())
	}
}

func cmdCheck(args []string, reprint bool) {
	if len(args) != 1 {
		log.Fatal("check/fmt need exactly one rule file")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	rules, err := sdwp.ParseRules(string(data))
	if err != nil {
		log.Fatal(err)
	}
	issues := prml.Analyze(rules, prml.AnalyzeOptions{Params: map[string]bool{"threshold": true}})
	for _, i := range issues {
		fmt.Fprintln(os.Stderr, i.Error())
	}
	if len(issues) > 0 {
		os.Exit(1)
	}
	if reprint {
		fmt.Print(sdwp.FormatRules(rules...))
		return
	}
	for _, r := range rules {
		fmt.Printf("%-20s %-9s when %s\n", r.Name, prml.Classify(r), r.Event.Kind)
	}
	fmt.Printf("%d rules OK\n", len(rules))
}

func cmdSimulate(args []string) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	user := fs.String("user", "alice", "user id")
	role := fs.String("role", "RegionalSalesManager", "user role characteristic")
	lon := fs.Float64("lon", 0, "login longitude (0 = first city)")
	lat := fs.Float64("lat", 0, "login latitude (0 = first city)")
	rulesPath := fs.String("rules", "", "PRML rule file (default: paper rules)")
	_ = fs.Parse(args)

	ds, err := sdwp.GenerateData(sdwp.DefaultDataConfig())
	if err != nil {
		log.Fatal(err)
	}
	users, err := sdwp.NewSalesUserStore(map[string]string{*user: *role})
	if err != nil {
		log.Fatal(err)
	}
	engine := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{})
	defer engine.Close()
	engine.SetParam("threshold", sdwp.Number(2))
	src := sdwp.PaperRules
	if *rulesPath != "" {
		data, err := os.ReadFile(*rulesPath)
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
	}
	if _, err := engine.AddRules(src); err != nil {
		log.Fatal(err)
	}

	loc := ds.CityLocs[0]
	if *lon != 0 || *lat != 0 {
		loc = sdwp.Pt(*lon, *lat)
	}
	s, err := engine.StartSession(*user, loc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session for %s (%s) at %s\n", *user, *role, loc.WKT())
	fmt.Println("schema delta:")
	diff := s.Schema().Diff(engine.Cube().Schema())
	if len(diff) == 0 {
		fmt.Println("  (none)")
	}
	for _, d := range diff {
		fmt.Println("  " + d)
	}
	if mask := s.View().LevelMask("Store", "Store"); mask != nil {
		fmt.Printf("stores selected: %d\n", mask.Count())
	}
	res, err := s.Query(sdwp.Query{
		Fact:       "Sales",
		GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []sdwp.MeasureAgg{{Measure: "UnitSales", Agg: sdwp.SUM}, {Agg: sdwp.COUNT}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("personalized sales by city (%d of %d facts):\n", res.MatchedFacts, engine.Cube().FactData("Sales").Len())
	for _, row := range res.Rows {
		fmt.Printf("  %-10s sum=%-9.0f n=%.0f\n", row.Groups[0], row.Values[0], row.Values[1])
	}
}

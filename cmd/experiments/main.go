// Command experiments regenerates every evaluation artifact of the
// reproduction, keyed to the experiment index in DESIGN.md §4:
//
//	F1..F6 — the paper's six figures (process, models, profile, metamodel)
//	X1..X3 — the paper's three worked examples (Section 5)
//	C1..C5 — quantitative support for the paper's claims
//	C6..C13 — ablations and scale-out: rule-plan optimizer, parallel/batch
//	         executors, the query scheduler (coalescing + result cache),
//	         cross-query subexpression sharing, sharded fact tables,
//	         per-filter bitmap algebra (predicate bitmaps AND-composed
//	         into filter-set masks), per-tenant query-cost accounting
//	         under a mixed-tenant workload, and heavy-tenant isolation
//	         (weighted fair admission + overload shedding keeping a light
//	         tenant's tail latency bounded under a flooding tenant)
//
// The output of this command is what EXPERIMENTS.md records. Pass -full for
// the larger sweeps (C1 to 1M facts, C4 to 1M points).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdwp"
	"sdwp/internal/geoidx"
	"sdwp/internal/geom"
	"sdwp/internal/prml"
)

var (
	full = flag.Bool("full", false, "run the large sweeps")
	only = flag.String("only", "", "comma-separated experiment IDs to run (e.g. C13 or F5,C8); default all")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	section("F1", "F1/F2/F3/F4 — models and process", runFigures)
	section("F5", "F5 — PRML metamodel round trip", runF5)
	section("X1", "F6 + X1 — schema rule (Example 5.1)", runX1)
	section("X2", "X2 — instance rule (Example 5.2)", runX2)
	section("X3", "X3 — interest rules (Example 5.3)", runX3)
	section("C1", "C1 — personalized view vs full-cube baseline", runC1)
	section("C2", "C2 — one-time pre-selection vs per-query spatial re-filtering", runC2)
	section("C3", "C3 — rule-engine cost", runC3)
	section("C4", "C4 — R-tree vs linear spatial scan", runC4)
	section("C5", "C5 — cube roll-up scaling", runC5)
	section("C6", "C6 — ablation: rule-plan optimizer (R-tree) vs interpreter", runC6)
	section("C7", "C7 — parallel partitioned scan & shared-scan query batch", runC7)
	section("C8", "C8 — query scheduler: coalesced shared scans + result cache under concurrent clients", runC8)
	section("C9", "C9 — cross-query subexpression sharing: shared filter bitmaps + group-key columns", runC9)
	section("C10", "C10 — sharded fact table: scatter-gather scans + cross-batch artifact cache", runC10)
	section("C11", "C11 — per-filter bitmap algebra: predicate bitmaps AND-composed into set masks", runC11)
	section("C12", "C12 — per-tenant cost accounting: mixed-tenant traffic, fair splits, cache credits", runC12)
	section("C13", "C13 — heavy-tenant isolation: fair shares + load shedding under a flooding tenant", runC13)
}

// section runs one experiment, skipped when -only is set and does not list
// its ID.
func section(id, title string, f func()) {
	if *only != "" {
		match := false
		for _, want := range strings.Split(*only, ",") {
			if strings.EqualFold(strings.TrimSpace(want), id) {
				match = true
				break
			}
		}
		if !match {
			return
		}
	}
	header(title)
	f()
}

func header(s string) {
	fmt.Printf("\n==== %s ====\n", s)
}

// must aborts on error (the harness runs fixed, known-good scenarios).
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func mustErr(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// engineWithRules builds the standard scenario: default dataset, Fig. 4
// users, paper rules, threshold 2.
func engineWithRules(cfg sdwp.DataConfig) (*sdwp.Engine, *sdwp.Dataset) {
	ds := must(sdwp.GenerateData(cfg))
	users := must(sdwp.NewSalesUserStore(map[string]string{
		"alice": "RegionalSalesManager",
		"bob":   "Accountant",
	}))
	e := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{})
	e.SetParam("threshold", sdwp.Number(2))
	must(e.AddRules(sdwp.PaperRules))
	return e, ds
}

func runFigures() {
	// F2: the Fig. 2 MD model.
	schema := sdwp.SalesSchema()
	fmt.Println("F2: base MD model (Fig. 2):")
	indented(schema.Render())

	// F3/F4: the SUS profile.
	p := must(sdwp.Fig4Profile())
	fmt.Println("F3/F4: SUS profile classes:")
	for _, c := range p.Classes() {
		fmt.Printf("    «%s» %s\n", p.Class(c).Stereo, c)
	}
}

func runF5() {
	rules := must(sdwp.ParseRules(sdwp.PaperRules))
	printed := sdwp.FormatRules(rules...)
	back := must(sdwp.ParseRules(printed))
	fmt.Printf("  parsed %d rules; canonical form re-parses to %d rules\n", len(rules), len(back))
	for _, r := range rules {
		fmt.Printf("    %-18s kind=%-9s event=%s\n", r.Name, prml.Classify(r), r.Event.Kind)
	}
}

func runX1() {
	e, ds := engineWithRules(sdwp.DefaultDataConfig())
	defer e.Close()
	alice := must(e.StartSession("alice", ds.CityLocs[0]))
	bob := must(e.StartSession("bob", ds.CityLocs[0]))
	fmt.Println("  manager schema delta (Fig. 2 → Fig. 6):")
	for _, d := range alice.Schema().Diff(e.Cube().Schema()) {
		fmt.Println("    " + d)
	}
	fmt.Printf("  accountant schema delta: %d entries (personalization is per user)\n",
		len(bob.Schema().Diff(e.Cube().Schema())))
	fmt.Println("  personalized GeoMD (manager):")
	indented(alice.Schema().Render())
}

func runX2() {
	e, ds := engineWithRules(sdwp.DefaultDataConfig())
	defer e.Close()
	loc := ds.CityLocs[3]
	s := must(e.StartSession("alice", loc))
	mask := s.View().LevelMask("Store", "Store")
	want := 0
	for _, sl := range ds.StoreLocs {
		if geom.Haversine(loc, sl) < 5 {
			want++
		}
	}
	fmt.Printf("  stores within 5 km (ground truth %d, rule selected %d)\n", want, mask.Count())
	res := must(s.Query(sdwp.Query{Fact: "Sales", Aggregates: []sdwp.MeasureAgg{{Agg: sdwp.COUNT}}}))
	base := must(s.QueryBaseline(sdwp.Query{Fact: "Sales", Aggregates: []sdwp.MeasureAgg{{Agg: sdwp.COUNT}}}))
	fmt.Printf("  succeeding analysis sees %d of %d facts\n", res.MatchedFacts, base.MatchedFacts)
}

func runX3() {
	e, ds := engineWithRules(sdwp.DefaultDataConfig())
	defer e.Close()
	const pred = "Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km"
	for round := 1; round <= 3; round++ {
		s := must(e.StartSession("alice", ds.CityLocs[0]))
		sel := must(s.SpatialSelect("GeoMD.Store.City", pred))
		deg, _ := e.Users().Get("alice").Resolve([]string{"dm2airportcity", "degree"})
		fmt.Printf("  session %d: %d airport cities selected, rules fired %v, degree=%v\n",
			round, len(sel.Selected), sel.RulesFired, deg)
		mustErr(e.EndSession(s))
	}
	s := must(e.StartSession("alice", ds.CityLocs[0]))
	_, hasTrain := s.Schema().Layer("Train")
	cities := s.View().LevelMask("Store", "City")
	fmt.Printf("  over threshold: Train layer=%v, %d train-connected cities pre-selected\n",
		hasTrain, cities.Count())
}

func timeIt(n int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return time.Since(start) / time.Duration(n)
}

func runC1() {
	sizes := []int{20000, 100000, 500000}
	if *full {
		sizes = append(sizes, 1000000)
	}
	q := sdwp.Query{
		Fact:       "Sales",
		GroupBy:    []sdwp.LevelRef{{Dimension: "Product", Level: "Family"}},
		Aggregates: []sdwp.MeasureAgg{{Measure: "UnitSales", Agg: sdwp.SUM}},
	}
	fmt.Printf("  %10s %14s %14s %12s %12s %8s\n",
		"facts", "baseline", "personalized", "rows-base", "rows-pers", "speedup")
	for _, n := range sizes {
		cfg := sdwp.DefaultDataConfig()
		cfg.Stores = 2000
		cfg.Sales = n
		e, ds := engineWithRules(cfg)
		s := must(e.StartSession("alice", ds.CityLocs[7]))
		var rb, rp *sdwp.Result
		tBase := timeIt(5, func() { rb = must(s.QueryBaseline(q)) })
		tPers := timeIt(5, func() { rp = must(s.Query(q)) })
		fmt.Printf("  %10d %14s %14s %12d %12d %7.1fx\n",
			n, tBase.Round(time.Microsecond), tPers.Round(time.Microsecond),
			rb.ScannedFacts, rp.ScannedFacts,
			float64(tBase)/float64(tPers))
		e.Close()
	}
}

func runC2() {
	cfg := sdwp.DefaultDataConfig()
	cfg.Stores = 2000
	cfg.Sales = 200000
	e, ds := engineWithRules(cfg)
	defer e.Close()
	loc := ds.CityLocs[7]
	q := sdwp.Query{
		Fact:       "Sales",
		GroupBy:    []sdwp.LevelRef{{Dimension: "Product", Level: "Family"}},
		Aggregates: []sdwp.MeasureAgg{{Measure: "UnitSales", Agg: sdwp.SUM}},
	}
	fmt.Printf("  %12s %16s %16s\n", "queries", "per-query-filter", "pre-selected")
	for _, nq := range []int{1, 10, 100} {
		// Baseline B3: a spatial-capable tool re-filters on every query —
		// a fresh session (rule evaluation + selection) per query.
		start := time.Now()
		for i := 0; i < nq; i++ {
			s := must(e.StartSession("alice", loc))
			must(s.Query(q))
			mustErr(e.EndSession(s))
		}
		perQuery := time.Since(start)
		// The paper's way: one session, selection happens once at login.
		start = time.Now()
		s := must(e.StartSession("alice", loc))
		for i := 0; i < nq; i++ {
			must(s.Query(q))
		}
		mustErr(e.EndSession(s))
		pre := time.Since(start)
		fmt.Printf("  %12d %16s %16s\n", nq,
			perQuery.Round(time.Microsecond), pre.Round(time.Microsecond))
	}
}

func runC3() {
	// Parse + analyze throughput.
	nParse := 2000
	t := timeIt(1, func() {
		for i := 0; i < nParse; i++ {
			must(sdwp.ParseRules(sdwp.PaperRules))
		}
	})
	fmt.Printf("  parse throughput: %.0f rule-sets/s (4 rules each)\n",
		float64(nParse)/t.Seconds())

	// Session-start latency vs number of registered rules. Extra rules are
	// no-op acquisition rules (they still parse, classify and evaluate).
	fmt.Printf("  %12s %18s\n", "rules", "session-start")
	for _, n := range []int{4, 40, 400} {
		cfg := sdwp.DefaultDataConfig()
		e, ds := engineWithRules(cfg)
		var extra strings.Builder
		for i := 4; i < n; i++ {
			fmt.Fprintf(&extra, "Rule:pad%03d When SessionStart do SetContent(SUS.DecisionMaker.name, 'u') endWhen\n", i)
		}
		if extra.Len() > 0 {
			must(e.AddRules(extra.String()))
		}
		loc := ds.CityLocs[0]
		lat := timeIt(10, func() {
			s := must(e.StartSession("alice", loc))
			mustErr(e.EndSession(s))
		})
		fmt.Printf("  %12d %18s\n", n, lat.Round(time.Microsecond))
		e.Close()
	}
}

func runC4() {
	sizes := []int{1000, 10000, 100000}
	if *full {
		sizes = append(sizes, 1000000)
	}
	fmt.Printf("  %10s %14s %14s %10s\n", "points", "r-tree", "linear", "speedup")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(42))
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*12-9, rng.Float64()*7+36)
		}
		rt := geoidx.NewPointIndex(pts)
		lin := geoidx.NewLinearPointIndex(pts)
		center := geom.Pt(-3.7, 40.4)
		reps := 200
		if n >= 100000 {
			reps = 20
		}
		tR := timeIt(reps, func() {
			rt.WithinKm(center, 25, func(int32) bool { return true })
		})
		tL := timeIt(reps, func() {
			lin.WithinKm(center, 25, func(int32) bool { return true })
		})
		fmt.Printf("  %10d %14s %14s %9.1fx\n", n,
			tR.Round(time.Nanosecond), tL.Round(time.Nanosecond), float64(tL)/float64(tR))
	}
}

func runC5() {
	sizes := []int{20000, 200000}
	if *full {
		sizes = append(sizes, 1000000)
	}
	levels := []string{"Store", "City", "State", "Country"}
	fmt.Printf("  %10s", "facts")
	for _, l := range levels {
		fmt.Printf(" %12s", l)
	}
	fmt.Println()
	for _, n := range sizes {
		cfg := sdwp.DefaultDataConfig()
		cfg.Stores = 2000
		cfg.Sales = n
		ds := must(sdwp.GenerateData(cfg))
		fmt.Printf("  %10d", n)
		for _, level := range levels {
			q := sdwp.Query{
				Fact:       "Sales",
				GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: level}},
				Aggregates: []sdwp.MeasureAgg{{Measure: "UnitSales", Agg: sdwp.SUM}},
			}
			lat := timeIt(3, func() { must(ds.Cube.Execute(q, nil)) })
			fmt.Printf(" %12s", lat.Round(time.Microsecond))
		}
		fmt.Println()
	}
}

func runC6() {
	const rule = `Rule:near When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 5km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`
	sizes := []int{10000, 100000}
	if *full {
		sizes = append(sizes, 500000)
	}
	fmt.Printf("  %10s %16s %16s %10s\n", "stores", "optimized", "interpreted", "speedup")
	for _, stores := range sizes {
		cfg := sdwp.DefaultDataConfig()
		cfg.Stores = stores
		cfg.Sales = 1000
		ds := must(sdwp.GenerateData(cfg))
		var lat [2]time.Duration
		for mode, disable := range []bool{false, true} {
			users := must(sdwp.NewSalesUserStore(map[string]string{"u": "RegionalSalesManager"}))
			e := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{DisableRuleOptimizer: disable})
			must(e.AddRules(rule))
			loc := ds.CityLocs[0]
			reps := 5
			if stores >= 100000 && disable {
				reps = 2
			}
			lat[mode] = timeIt(reps, func() {
				s := must(e.StartSession("u", loc))
				mustErr(e.EndSession(s))
			})
			e.Close()
		}
		fmt.Printf("  %10d %16s %16s %9.1fx\n", stores,
			lat[0].Round(time.Microsecond), lat[1].Round(time.Microsecond),
			float64(lat[1])/float64(lat[0]))
	}
}

// runC7 measures the parallel partitioned query executor against the
// serial scan, and the shared-scan batch API against answering the same
// queries one by one — the multi-user dashboard workload: every logged-in
// manager's personalized view aggregating over the same fact table.
func runC7() {
	cfg := sdwp.DefaultDataConfig()
	cfg.Stores = 2000
	cfg.Sales = 200000
	if *full {
		cfg.Sales = 1000000
	}
	roles := map[string]string{}
	const users = 8
	for i := 0; i < users; i++ {
		roles[fmt.Sprintf("mgr%02d", i)] = "RegionalSalesManager"
	}
	ds := must(sdwp.GenerateData(cfg))
	userStore := must(sdwp.NewSalesUserStore(roles))
	e := sdwp.NewEngine(ds.Cube, userStore, sdwp.EngineOptions{})
	defer e.Close()
	e.SetParam("threshold", sdwp.Number(2))
	must(e.AddRules(sdwp.PaperRules))

	q := sdwp.Query{
		Fact:       "Sales",
		GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []sdwp.MeasureAgg{{Measure: "UnitSales", Agg: sdwp.SUM}},
	}

	// Parallel partitioned scan vs serial, full warehouse.
	fmt.Printf("  parallel scan (%d facts, group by Store.City):\n", cfg.Sales)
	fmt.Printf("  %10s %14s %10s\n", "workers", "latency", "speedup")
	serial := timeIt(5, func() { must(ds.Cube.Execute(q, nil)) })
	fmt.Printf("  %10d %14s %9.1fx\n", 1, serial.Round(time.Microsecond), 1.0)
	seen := map[int]bool{1: true}
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		w := workers
		if seen[w] {
			continue
		}
		seen[w] = true
		lat := timeIt(5, func() { must(ds.Cube.ExecuteParallel(q, nil, w)) })
		fmt.Printf("  %10d %14s %9.1fx\n", w, lat.Round(time.Microsecond),
			float64(serial)/float64(lat))
	}

	// Shared-scan batch: every manager's personalized view of the same
	// aggregate, answered one by one vs in one batch.
	var sessions []*sdwp.Session
	var qs []sdwp.Query
	for i := 0; i < users; i++ {
		s := must(e.StartSession(fmt.Sprintf("mgr%02d", i), ds.CityLocs[i%len(ds.CityLocs)]))
		sessions = append(sessions, s)
		qs = append(qs, q)
	}
	fmt.Printf("  shared-scan batch (%d personalized sessions, same fact):\n", users)
	oneByOne := timeIt(5, func() {
		for _, s := range sessions {
			must(s.Query(q))
		}
	})
	batched := timeIt(5, func() { must(e.ExecuteBatch(qs, sessions)) })
	fmt.Printf("  %14s %14s %10s\n", "one-by-one", "batched", "speedup")
	fmt.Printf("  %14s %14s %9.1fx\n", oneByOne.Round(time.Microsecond),
		batched.Round(time.Microsecond), float64(oneByOne)/float64(batched))
	for _, s := range sessions {
		mustErr(e.EndSession(s))
	}
}

// runC8 measures the qsched subsystem end to end: N concurrent clients,
// each looping personalized single queries (the traffic shape PR 1's batch
// API could not help — nobody arrives holding a batch), answered three
// ways: direct serial scans, direct parallel scans, and scheduler-routed
// with coalescing plus the epoch-keyed result cache. The scheduler modes
// also report how many fact scans actually ran for how many queries.
func runC8() {
	cfg := sdwp.DefaultDataConfig()
	cfg.Stores = 2000
	cfg.Sales = 200000
	if *full {
		cfg.Sales = 1000000
	}
	const clients = 16
	const queriesPerClient = 25
	roles := map[string]string{}
	for i := 0; i < clients; i++ {
		roles[fmt.Sprintf("mgr%02d", i)] = "RegionalSalesManager"
	}
	ds := must(sdwp.GenerateData(cfg))

	// Each client cycles through a few dashboard tiles; repeats within and
	// across clients are what the cache and dedup paths exist for.
	tiles := []sdwp.Query{
		{Fact: "Sales", GroupBy: []sdwp.LevelRef{{Dimension: "Store", Level: "City"}},
			Aggregates: []sdwp.MeasureAgg{{Measure: "UnitSales", Agg: sdwp.SUM}}},
		{Fact: "Sales", GroupBy: []sdwp.LevelRef{{Dimension: "Product", Level: "Family"}},
			Aggregates: []sdwp.MeasureAgg{{Measure: "StoreSales", Agg: sdwp.SUM}}},
		{Fact: "Sales", Aggregates: []sdwp.MeasureAgg{{Agg: sdwp.COUNT}}},
	}

	modes := []struct {
		name string
		opts sdwp.EngineOptions
	}{
		{"direct-serial", sdwp.EngineOptions{DisableScheduler: true}},
		{"direct-parallel", sdwp.EngineOptions{DisableScheduler: true, QueryWorkers: -1}},
		{"coalesced", sdwp.EngineOptions{
			CoalesceWindow: 500 * time.Microsecond, MaxInFlightScans: 2}},
		{"coalesced+cache", sdwp.EngineOptions{
			CoalesceWindow: 500 * time.Microsecond, MaxInFlightScans: 2,
			ResultCacheBytes: 32 << 20}},
	}
	fmt.Printf("  %d clients x %d personalized queries, %d facts\n",
		clients, queriesPerClient, cfg.Sales)
	fmt.Printf("  %16s %12s %12s %10s %10s %8s\n",
		"mode", "wall", "queries/s", "scans", "coalesce", "cachehit")
	for _, mode := range modes {
		users := must(sdwp.NewSalesUserStore(roles))
		e := sdwp.NewEngine(ds.Cube, users, mode.opts)
		e.SetParam("threshold", sdwp.Number(2))
		must(e.AddRules(sdwp.PaperRules))
		sessions := make([]*sdwp.Session, clients)
		for i := range sessions {
			sessions[i] = must(e.StartSession(fmt.Sprintf("mgr%02d", i),
				ds.CityLocs[i%len(ds.CityLocs)]))
		}
		start := time.Now()
		var wg sync.WaitGroup
		for i, s := range sessions {
			wg.Add(1)
			go func(i int, s *sdwp.Session) {
				defer wg.Done()
				for k := 0; k < queriesPerClient; k++ {
					must(s.Query(tiles[(i+k)%len(tiles)]))
				}
			}(i, s)
		}
		wg.Wait()
		wall := time.Since(start)
		st := e.SchedulerStats()
		total := clients * queriesPerClient
		scans, ratio, hit := "-", "-", "-"
		if !mode.opts.DisableScheduler {
			scans = fmt.Sprintf("%d", st.FactScans)
			ratio = fmt.Sprintf("%.1fx", st.CoalesceRatio)
			hit = fmt.Sprintf("%.0f%%", 100*st.CacheHitRate)
		}
		fmt.Printf("  %16s %12s %12.0f %10s %10s %8s\n",
			mode.name, wall.Round(time.Microsecond),
			float64(total)/wall.Seconds(), scans, ratio, hit)
		for _, s := range sessions {
			mustErr(e.EndSession(s))
		}
		e.Close()
	}
}

// runC9 measures cross-query subexpression sharing inside batch scans,
// both at the executor (a 16-query batch sharing one filter set across
// four groupings, A/B over cube.BatchOptions.DisableSharing) and end to
// end through the scheduler (concurrent clients issuing filtered
// personalized queries that coalesce into sharing-aware scans, reported
// through SchedulerStats' filter-mask / group-key sharing ratios — the
// same numbers GET /api/stats serves).
func runC9() {
	cfg := sdwp.DefaultDataConfig()
	cfg.Stores = 2000
	cfg.Sales = 200000
	if *full {
		cfg.Sales = 1000000
	}
	ds := must(sdwp.GenerateData(cfg))

	// Executor-level A/B: one batch, shared filter set, four groupings.
	filters := []sdwp.AttrFilter{{
		LevelRef: sdwp.LevelRef{Dimension: "Store", Level: "City"},
		Attr:     "population", Op: sdwp.OpGt, Value: float64(100000),
	}}
	var qs []sdwp.Query
	for _, level := range []string{"Store", "City", "State", "Country"} {
		for _, measure := range []string{"UnitSales", "StoreSales"} {
			for _, limit := range []int{0, 5} {
				qs = append(qs, sdwp.Query{
					Fact:       "Sales",
					GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: level}},
					Aggregates: []sdwp.MeasureAgg{{Measure: measure, Agg: sdwp.SUM}},
					Filters:    filters,
					Limit:      limit,
				})
			}
		}
	}
	var stats sdwp.SharingStats
	tOff := timeIt(5, func() {
		must2(ds.Cube.ExecuteBatchOpt(qs, nil, sdwp.BatchOptions{DisableSharing: true}))
	})
	tOn := timeIt(5, func() {
		_, st, err := ds.Cube.ExecuteBatchOpt(qs, nil, sdwp.BatchOptions{})
		mustErr(err)
		stats = st
	})
	fmt.Printf("  batch of %d queries (%d facts): %d filter sets -> %d bitmaps, %d groupings -> %d key columns\n",
		len(qs), cfg.Sales, stats.FilterSets, stats.DistinctFilterSets,
		stats.GroupKeySets, stats.DistinctGroupings)
	fmt.Printf("  %16s %14s %14s %10s\n", "mode", "batch", "per-query", "speedup")
	fmt.Printf("  %16s %14s %14s %10s\n", "sharing off", tOff.Round(time.Microsecond),
		(tOff / time.Duration(len(qs))).Round(time.Microsecond), "1.0x")
	fmt.Printf("  %16s %14s %14s %9.1fx\n", "sharing on", tOn.Round(time.Microsecond),
		(tOn / time.Duration(len(qs))).Round(time.Microsecond), float64(tOff)/float64(tOn))

	// End to end: concurrent personalized clients whose filtered dashboard
	// tiles coalesce into sharing-aware scans. A 300 km selection radius
	// keeps each view broad enough (~17% of facts each, 8 clients per
	// batch) that the executor's cost heuristic materializes the shared
	// artifacts; narrower views deliberately stay on the fused path —
	// sharing never regresses them — while the sharing ratios report the
	// workload's shareability either way.
	const clients = 8
	const queriesPerClient = 12
	const wideRule = `Rule:near300 When SessionStart do
  Foreach s in (GeoMD.Store)
    If (Distance(s.geometry, SUS.DecisionMaker.dm2session.s2location.geometry) < 300km) then
      SelectInstance(s)
    endIf
  endForeach
endWhen`
	roles := map[string]string{}
	for i := 0; i < clients; i++ {
		roles[fmt.Sprintf("mgr%02d", i)] = "RegionalSalesManager"
	}
	tiles := qs[:6]
	fmt.Printf("  scheduler end-to-end: %d clients x %d filtered queries\n", clients, queriesPerClient)
	fmt.Printf("  %16s %12s %10s %12s %12s\n", "mode", "wall", "scans", "filter-share", "group-share")
	for _, mode := range []struct {
		name string
		opts sdwp.EngineOptions
	}{
		{"sharing off", sdwp.EngineOptions{
			CoalesceWindow: 500 * time.Microsecond, MaxInFlightScans: 2,
			SharedSubexpr: sdwp.SharedSubexprOff}},
		{"sharing on", sdwp.EngineOptions{
			CoalesceWindow: 500 * time.Microsecond, MaxInFlightScans: 2}},
	} {
		users := must(sdwp.NewSalesUserStore(roles))
		e := sdwp.NewEngine(ds.Cube, users, mode.opts)
		must(e.AddRules(wideRule))
		sessions := make([]*sdwp.Session, clients)
		for i := range sessions {
			sessions[i] = must(e.StartSession(fmt.Sprintf("mgr%02d", i),
				ds.CityLocs[i%len(ds.CityLocs)]))
		}
		start := time.Now()
		var wg sync.WaitGroup
		for i, s := range sessions {
			wg.Add(1)
			go func(i int, s *sdwp.Session) {
				defer wg.Done()
				for k := 0; k < queriesPerClient; k++ {
					must(s.Query(tiles[(i+k)%len(tiles)]))
				}
			}(i, s)
		}
		wg.Wait()
		wall := time.Since(start)
		st := e.SchedulerStats()
		fShare, gShare := "-", "-"
		if st.FilterMasks > 0 {
			fShare = fmt.Sprintf("%.1fx", st.FilterMaskSharing)
		}
		if st.GroupKeyCols > 0 {
			gShare = fmt.Sprintf("%.1fx", st.GroupKeySharing)
		}
		fmt.Printf("  %16s %12s %10d %12s %12s\n", mode.name,
			wall.Round(time.Microsecond), st.FactScans, fShare, gShare)
		for _, s := range sessions {
			mustErr(e.EndSession(s))
		}
		e.Close()
	}
}

// runC10 measures the sharded fact-table executor A/B: the same 16-query
// dashboard batch answered by the single-table engine vs scatter-gather
// over 2/4/8 hash-partitioned shards (results are identical; the shard
// columns show the fan-out and the per-shard fact balance), plus the
// cross-batch artifact cache (repeated batches stop re-materializing
// their shared filter bitmaps and key columns — the hit rate column).
func runC10() {
	cfg := sdwp.DefaultDataConfig()
	cfg.Stores = 2000
	cfg.Sales = 200000
	if *full {
		cfg.Sales = 1000000
	}
	ds := must(sdwp.GenerateData(cfg))
	users := must(sdwp.NewSalesUserStore(map[string]string{"alice": "RegionalSalesManager"}))

	filters := []sdwp.AttrFilter{{
		LevelRef: sdwp.LevelRef{Dimension: "Store", Level: "City"},
		Attr:     "population", Op: sdwp.OpGt, Value: float64(100000),
	}}
	var qs []sdwp.Query
	for _, level := range []string{"Store", "City", "State", "Country"} {
		for _, measure := range []string{"UnitSales", "StoreSales"} {
			for _, limit := range []int{0, 5} {
				qs = append(qs, sdwp.Query{
					Fact:       "Sales",
					GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: level}},
					Aggregates: []sdwp.MeasureAgg{{Measure: measure, Agg: sdwp.SUM}},
					Filters:    filters,
					Limit:      limit,
				})
			}
		}
	}

	const rounds = 5
	fmt.Printf("  batch of %d queries x %d rounds, %d facts, %d CPUs\n",
		len(qs), rounds, cfg.Sales, runtime.GOMAXPROCS(0))
	fmt.Printf("  %14s %12s %10s %10s %14s %12s\n",
		"mode", "wall/round", "shardscans", "balance", "artifact-hits", "vs 1 shard")
	var base time.Duration
	for _, shards := range []int{1, 2, 4, 8} {
		e := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{
			FactShards:         shards,
			QueryWorkers:       2,
			ArtifactCacheBytes: 64 << 20,
		})
		t := timeIt(rounds, func() {
			must(e.ExecuteBatch(qs, nil))
		}) / rounds
		st := e.SchedulerStats()
		balance := "-"
		if len(st.ShardFactCounts) > 1 {
			min, max := st.ShardFactCounts[0], st.ShardFactCounts[0]
			for _, c := range st.ShardFactCounts {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			balance = fmt.Sprintf("%.2f", float64(min)/float64(max))
		}
		name := "unsharded"
		if shards > 1 {
			name = fmt.Sprintf("%d shards", shards)
		}
		speedup := "1.0x"
		if shards == 1 {
			base = t
		} else if t > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(base)/float64(t))
		}
		fmt.Printf("  %14s %12s %10d %10s %14d %12s\n",
			name, t.Round(time.Microsecond), st.ShardScans, balance,
			st.ArtifactCache.Hits, speedup)
		e.Close()
	}
}

func runC11() {
	cfg := sdwp.DefaultDataConfig()
	cfg.Stores = 2000
	cfg.Sales = 200000
	if *full {
		cfg.Sales = 1000000
	}
	ds := must(sdwp.GenerateData(cfg))

	// Overlapping-but-unequal filter sets: all six pairwise conjunctions
	// of four predicates, cycled with levels and measures into a 16-query
	// dashboard batch. Whole-set sharing evaluates six full conjunctions;
	// per-filter sharing evaluates the four predicates once each and
	// AND-composes the six set masks.
	mkF := func(dim, level, attr string, op sdwp.FilterOp, v any) sdwp.AttrFilter {
		return sdwp.AttrFilter{LevelRef: sdwp.LevelRef{Dimension: dim, Level: level},
			Attr: attr, Op: op, Value: v}
	}
	pool := []sdwp.AttrFilter{
		mkF("Store", "City", "population", sdwp.OpGt, float64(100000)),
		mkF("Store", "City", "population", sdwp.OpGt, float64(1000000)),
		mkF("Customer", "Customer", "age", sdwp.OpLe, float64(40)),
		mkF("Product", "Product", "brand", sdwp.OpNe, "Brand05"),
	}
	var sets [][]sdwp.AttrFilter
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			sets = append(sets, []sdwp.AttrFilter{pool[i], pool[j]})
		}
	}
	var qs []sdwp.Query
	levels := []string{"Store", "City", "State", "Country"}
	measures := []string{"UnitSales", "StoreSales"}
	for k := 0; k < 16; k++ {
		qs = append(qs, sdwp.Query{
			Fact:       "Sales",
			GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: levels[k%len(levels)]}},
			Aggregates: []sdwp.MeasureAgg{{Measure: measures[k%len(measures)], Agg: sdwp.SUM}},
			Filters:    sets[k%len(sets)],
		})
	}

	const rounds = 5
	var stats sdwp.SharingStats
	tSet := timeIt(rounds, func() {
		must2(ds.Cube.ExecuteBatchOpt(qs, nil, sdwp.BatchOptions{DisablePredicateSharing: true}))
	}) / rounds
	tPred := timeIt(rounds, func() {
		_, st, err := ds.Cube.ExecuteBatchOpt(qs, nil, sdwp.BatchOptions{})
		mustErr(err)
		stats = st
	}) / rounds
	fmt.Printf("  batch of %d queries (%d facts): %d filter sets -> %d distinct, %d predicate uses -> %d bitmaps, %d composed masks\n",
		len(qs), cfg.Sales, stats.FilterSets, stats.DistinctFilterSets,
		stats.FilterPredicates, stats.DistinctPredicates, stats.ComposedMasks)
	fmt.Printf("  %16s %14s %10s\n", "stage-1 grain", "wall/round", "speedup")
	fmt.Printf("  %16s %14s %10s\n", "per filter set", tSet.Round(time.Microsecond), "1.0x")
	fmt.Printf("  %16s %14s %9.2fx\n", "per predicate", tPred.Round(time.Microsecond),
		float64(tSet)/float64(tPred))

	// Cache admission: one-off filter sets are doorkept (never cached),
	// the recurring dashboard is admitted on its second offer and served
	// from the cache from the third run on.
	ac := sdwp.NewArtifactCache(64 << 20)
	oneOff := func(round int) []sdwp.Query {
		f := []sdwp.AttrFilter{mkF("Store", "City", "population", sdwp.OpGt, float64(50000+round))}
		return []sdwp.Query{{Fact: "Sales",
			GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: "State"}},
			Aggregates: []sdwp.MeasureAgg{{Measure: "UnitSales", Agg: sdwp.SUM}},
			Filters:    f,
		}, {Fact: "Sales",
			Aggregates: []sdwp.MeasureAgg{{Agg: sdwp.COUNT}},
			Filters:    f,
		}}
	}
	fmt.Printf("  cache admission doorkeeper (%d MiB artifact cache):\n", 64)
	fmt.Printf("  %8s %14s %8s %10s %10s %10s\n", "round", "hot batch", "hits", "doorkept", "entries", "bytes")
	for round := 1; round <= 3; round++ {
		t := timeIt(1, func() {
			must2(ds.Cube.ExecuteBatchOpt(qs, nil, sdwp.BatchOptions{Artifacts: ac}))
			must2(ds.Cube.ExecuteBatchOpt(oneOff(round), nil, sdwp.BatchOptions{Artifacts: ac}))
		})
		st := ac.Stats()
		fmt.Printf("  %8d %14s %8d %10d %10d %10d\n", round, t.Round(time.Microsecond),
			st.Hits, st.Doorkept, st.Entries, st.Bytes)
	}
}

// runC12 drives a mixed-tenant workload through one engine and reads the
// cost accounts back: a dashboard tenant whose repeated batch turns into
// result-cache credits, an ad-hoc tenant paying full scans for one-off
// fingerprints, and two tenants issuing the identical query concurrently
// so the coalesced scan's cost splits fairly between them. The tables
// printed here are the same data GET /api/tenants and
// GET /api/queries/top serve.
func runC12() {
	cfg := sdwp.DefaultDataConfig()
	cfg.Stores = 1000
	cfg.Sales = 100000
	ds := must(sdwp.GenerateData(cfg))
	users := must(sdwp.NewSalesUserStore(map[string]string{
		"dash":   "RegionalSalesManager", // repeated dashboard: cache hits
		"adhoc":  "Accountant",           // one-off fingerprints: full scans
		"twin-a": "RegionalSalesManager", // identical concurrent queries:
		"twin-b": "RegionalSalesManager", // one scan, cost split across both
	}))
	e := sdwp.NewEngine(ds.Cube, users, sdwp.EngineOptions{
		CoalesceWindow:   2 * time.Millisecond,
		ResultCacheBytes: 8 << 20,
	})
	defer e.Close()

	mkQ := func(level, measure string, minPop float64) sdwp.Query {
		return sdwp.Query{Fact: "Sales",
			GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: level}},
			Aggregates: []sdwp.MeasureAgg{{Measure: measure, Agg: sdwp.SUM}},
			Filters: []sdwp.AttrFilter{{LevelRef: sdwp.LevelRef{Dimension: "Store", Level: "City"},
				Attr: "population", Op: sdwp.OpGt, Value: minPop}},
		}
	}
	dashboard := []sdwp.Query{
		mkQ("City", "UnitSales", 100000),
		mkQ("State", "UnitSales", 100000),
		mkQ("State", "StoreSales", 100000),
	}
	sessions := map[string]*sdwp.Session{}
	for user := range map[string]string{"dash": "", "adhoc": "", "twin-a": "", "twin-b": ""} {
		sessions[user] = must(e.StartSession(user, ds.CityLocs[0]))
	}

	const rounds = 8
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // the dashboard tenant repeats one batch: hits from round 2 on
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			must(sessions["dash"].QueryBatch(dashboard, nil))
		}
	}()
	go func() { // the ad-hoc tenant never repeats a fingerprint
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			must(sessions["adhoc"].Query(mkQ("City", "UnitSales", float64(50000+r))))
		}
	}()
	go func() { // the twins race the identical query into the coalesce window
		defer wg.Done()
		twin := sdwp.Query{Fact: "Sales", Aggregates: []sdwp.MeasureAgg{{Agg: sdwp.COUNT}}}
		var tw sync.WaitGroup
		for r := 0; r < rounds; r++ {
			for _, u := range []string{"twin-a", "twin-b"} {
				tw.Add(1)
				go func(u string) {
					defer tw.Done()
					must(sessions[u].Query(twin))
				}(u)
			}
			tw.Wait()
		}
	}()
	wg.Wait()

	acct := e.Accountant()
	queries, total := acct.Totals()
	fmt.Printf("  %d queries accounted, %d facts scanned, %.2fms CPU attributed\n",
		queries, total.FactsScanned, float64(total.CPUNs)/1e6)
	fmt.Printf("  %8s %8s %6s %6s %12s %10s %11s\n",
		"tenant", "queries", "hits", "hit%", "facts", "cpu", "credit")
	for _, ts := range acct.Tenants() {
		fmt.Printf("  %8s %8d %6d %5.0f%% %12d %9.2fms %9.2fms\n",
			ts.Tenant, ts.Queries, ts.CacheHits, 100*ts.CacheHitRate,
			ts.Cost.FactsScanned, float64(ts.Cost.CPUNs)/1e6, float64(ts.Cost.CacheCreditNs)/1e6)
	}
	fmt.Printf("  heavy-query profiles (decay-weighted top 5 of %d fingerprints):\n", acct.Profiles().Len())
	fmt.Printf("  %14s %6s %9s %9s %12s\n", "fingerprint", "count", "mean", "p99", "facts/query")
	for _, p := range acct.TopQueries(5) {
		fp := p.Fingerprint
		if len(fp) > 14 {
			fp = fp[:14]
		}
		fmt.Printf("  %14s %6d %7.2fms %7.2fms %12d\n",
			fp, p.Count, p.MeanMs, p.P99Ms, p.MeanCost.FactsScanned)
	}
}

// runC13 demonstrates heavy-tenant isolation: cost-weighted fair admission
// plus overload shedding keep an interactive tenant's tail latency bounded
// while a hog floods the same engine with far more offered load. Each
// round measures the light tenant's paced workload twice — alone, then
// against a fresh engine where hog goroutines keep the admission queue
// saturated — and the verdict compares the best-of-rounds p99s (the
// structural tail, with single-core GC luck cancelled out). The isolation
// target is mixed p99 within 2x the solo p99, with the hog visibly
// throttled in the shed counters and the fair-share ledger.
func runC13() {
	cfg := sdwp.DefaultDataConfig()
	cfg.Stores = 1000
	cfg.Sales = 1200000
	ds := must(sdwp.GenerateData(cfg))
	mkUsers := func() *sdwp.UserStore {
		return must(sdwp.NewSalesUserStore(map[string]string{
			"light": "RegionalSalesManager", // interactive: one paced query at a time
			"hog":   "Accountant",           // flooding: hogWorkers concurrent scans
		}))
	}
	// Both tenants issue the same full-scan query shape with distinct
	// fingerprints per call (same per-query cost; neither dedup nor the
	// result cache softens the contention) — the hog is heavy purely by
	// offered volume, which is what admission control can actually police.
	cityScan := func(minPop int) sdwp.Query {
		return sdwp.Query{Fact: "Sales",
			GroupBy:    []sdwp.LevelRef{{Dimension: "Store", Level: "City"}},
			Aggregates: []sdwp.MeasureAgg{{Measure: "UnitSales", Agg: sdwp.SUM}},
			Filters: []sdwp.AttrFilter{{LevelRef: sdwp.LevelRef{Dimension: "Store", Level: "City"},
				Attr: "population", Op: sdwp.OpGt, Value: float64(minPop)}},
		}
	}
	lightQ := func(i int) sdwp.Query { return cityScan(100000 + i) }
	hogQ := func(i int) sdwp.Query { return cityScan(104096 + i%4096) }
	// The latency-bounded interactive profile from the operations cookbook:
	// serial single-query scans (no core multiplexing, no ride-along batch
	// cost — an admitted query waits behind at most one residual scan), a
	// short queue with shedding, and a 2:1 weight for the interactive
	// tenant. Throughput knobs (batching, in-flight scans) trade the other
	// way; see docs/OPERATIONS.md.
	opts := sdwp.EngineOptions{
		MaxInFlightScans: 1,
		MaxBatchQueries:  1,
		MaxQueueDepth:    2,
		TenantWeights:    map[string]float64{"light": 2, "hog": 1},
	}
	const (
		rounds     = 3
		lightN     = 60
		hogWorkers = 3
	)

	var lightShed atomic.Int64
	runLight := func(e *sdwp.Engine) []time.Duration {
		runtime.GC() // start each pass from the same heap state
		sess := must(e.StartSession("light", ds.CityLocs[0]))
		lats := make([]time.Duration, 0, lightN)
		for i := 0; i < lightN; i++ {
			start := time.Now()
			_, err := sess.Query(lightQ(i))
			for errors.Is(err, sdwp.ErrOverloaded) {
				// Fair admission keeps the under-share tenant out of the
				// shed set; retrying covers the cold start before its
				// ledger exists.
				lightShed.Add(1)
				time.Sleep(2 * time.Millisecond)
				start = time.Now()
				_, err = sess.Query(lightQ(i))
			}
			mustErr(err)
			lats = append(lats, time.Since(start))
			time.Sleep(35 * time.Millisecond) // think time: interactive, not saturating
		}
		return lats
	}
	pct := func(lats []time.Duration, p float64) time.Duration {
		s := append([]time.Duration(nil), lats...)
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		return s[int(p*float64(len(s)-1))]
	}

	{ // Per-query cost of the shared query shape, for scale.
		e := sdwp.NewEngine(ds.Cube, mkUsers(), opts)
		ls := must(e.StartSession("light", ds.CityLocs[0]))
		fmt.Printf("  per-query cost of the shared full-scan shape: %v (%d facts)\n",
			timeIt(5, func() { must(ls.Query(lightQ(100000))) }).Round(time.Microsecond), cfg.Sales)
		e.Close()
	}

	var soloAll, mixedAll []time.Duration
	soloP99 := time.Duration(1<<63 - 1)
	mixedP99 := soloP99
	var hogDone, hogShed atomic.Int64
	var lastStats sdwp.SchedulerStats
	for r := 0; r < rounds; r++ {
		// Solo pass: the light tenant alone, identically configured engine.
		e := sdwp.NewEngine(ds.Cube, mkUsers(), opts)
		solo := runLight(e)
		e.Close()
		soloAll = append(soloAll, solo...)
		if p := pct(solo, 0.99); p < soloP99 {
			soloP99 = p
		}

		// Mixed pass: the same workload while the hog floods.
		e = sdwp.NewEngine(ds.Cube, mkUsers(), opts)
		stop := make(chan struct{})
		var hw sync.WaitGroup
		for g := 0; g < hogWorkers; g++ {
			hw.Add(1)
			go func(g int) {
				defer hw.Done()
				sess := must(e.StartSession("hog", ds.CityLocs[0]))
				for i := g << 20; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := sess.Query(hogQ(i)); err != nil {
						if errors.Is(err, sdwp.ErrOverloaded) {
							hogShed.Add(1)
							// An impatient client: a fraction of the >=1s
							// Retry-After hint keeps the queue saturated.
							time.Sleep(100 * time.Millisecond)
							continue
						}
						log.Fatal(err)
					}
					hogDone.Add(1)
				}
			}(g)
		}
		time.Sleep(200 * time.Millisecond) // let the hog build its backlog and cost ledger
		mixed := runLight(e)
		lastStats = e.SchedulerStats()
		close(stop)
		hw.Wait()
		e.Close()
		mixedAll = append(mixedAll, mixed...)
		if p := pct(mixed, 0.99); p < mixedP99 {
			mixedP99 = p
		}
	}

	fmt.Printf("  light tenant: %d paced queries x %d rounds per phase; hog: %d workers flooding full scans\n",
		lightN, rounds, hogWorkers)
	fmt.Printf("  %8s %10s %12s\n", "phase", "p50", "best p99")
	fmt.Printf("  %8s %10s %12s\n", "solo",
		pct(soloAll, 0.50).Round(time.Microsecond), soloP99.Round(time.Microsecond))
	fmt.Printf("  %8s %10s %12s\n", "mixed",
		pct(mixedAll, 0.50).Round(time.Microsecond), mixedP99.Round(time.Microsecond))
	ratio := float64(mixedP99) / float64(soloP99)
	verdict := "bounded"
	if ratio > 2 {
		verdict = "over budget"
	}
	fmt.Printf("  mixed/solo p99 = %.2fx (%s; isolation target <= 2.00x); light shed-retries: %d\n",
		ratio, verdict, lightShed.Load())
	done, shed := hogDone.Load(), hogShed.Load()
	fmt.Printf("  hog offered %d queries: %d executed, %d shed (%.0f%% of offered load refused)\n",
		done+shed, done, shed, 100*float64(shed)/float64(done+shed))
	for _, tenant := range []string{"hog", "light"} {
		for reason, n := range lastStats.ShedByTenant[tenant] {
			fmt.Printf("    shed[%s][%s] = %d (final round)\n", tenant, reason, n)
		}
	}
	fmt.Printf("  fair-share ledger at final scrape (decayed cost window, heaviest first):\n")
	fmt.Printf("  %8s %7s %14s %8s %7s\n", "tenant", "weight", "usage", "queued", "share")
	for _, tsh := range lastStats.FairShares {
		fmt.Printf("  %8s %7.1f %14.0f %8d %6.0f%%\n",
			tsh.Tenant, tsh.Weight, tsh.UsageCost, tsh.Queued, 100*tsh.Share)
	}
}

// must2 aborts on error, discarding the two leading results.
func must2[A, B any](_ A, _ B, err error) {
	mustErr(err)
}

func indented(s string) {
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		fmt.Println("    " + line)
	}
}

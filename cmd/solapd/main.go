// Command solapd serves the spatial-data-warehouse personalization engine
// over HTTP: a synthetic warehouse (see internal/datagen), the paper's
// Fig. 4 user profile, and the Section 5 PRML rules (or a rule file of your
// own).
//
// Usage:
//
//	solapd [-addr :8080] [-seed 1] [-stores 300] [-sales 20000]
//	       [-rules file.prml] [-users alice=RegionalSalesManager,bob=Accountant]
//	       [-threshold 2] [-workers -1]
//	       [-coalesce-window 500us] [-max-inflight-scans 2]
//	       [-result-cache-mb 32] [-max-batch-queries 64]
//	       [-shared-subexpr=true] [-per-filter-sharing=true] [-packed-columns=true]
//	       [-fact-shards 0] [-query-timeout 0] [-artifact-cache-mb 0]
//	       [-trace-sample-rate 0] [-slow-query 0] [-pprof-addr ""]
//	       [-profile-registry-size 0] [-profile-decay 0] [-tenant-label-cap 0]
//	       [-max-queue-depth 0] [-target-queue-wait 0]
//	       [-tenant-weights alice=2,bob=1] [-auto-tune] [-auto-tune-interval 2s]
//
// Every flag, its default, and how the knobs interact is documented in
// docs/OPERATIONS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the -pprof-addr listener
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sdwp"
	"sdwp/internal/cube"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Int64("seed", 1, "dataset seed")
		cities    = flag.Int("cities", 0, "number of cities (0 = default)")
		stores    = flag.Int("stores", 0, "number of stores (0 = default)")
		sales     = flag.Int("sales", 0, "number of sales facts (0 = default)")
		rulesPath = flag.String("rules", "", "PRML rule file (default: the paper's Section 5 rules)")
		dataPath  = flag.String("data", "", "warehouse snapshot JSON (default: generate synthetic data; see sdwctl gen -out)")
		profiles  = flag.String("profiles", "", "user-profile JSON file: loaded at boot if present, saved on SIGINT/SIGTERM")
		usersSpec = flag.String("users", "alice=RegionalSalesManager,bob=Accountant",
			"comma-separated user=role assignments")
		threshold = flag.Float64("threshold", 2, "designer threshold for the TrainAirportCity rule")
		workers   = flag.Int("workers", 0,
			"query scan workers: 0 or 1 = serial, N = parallel partitioned scans, -1 = one per CPU")
		coalesceWindow = flag.Duration("coalesce-window", 500*time.Microsecond,
			"query scheduler micro-batch window: how long to hold the first queued query open for more concurrent queries to join its shared scan (0 = no added latency)")
		maxInFlight = flag.Int("max-inflight-scans", 0,
			"concurrent shared scans the scheduler dispatches (0 = default)")
		cacheMB = flag.Int("result-cache-mb", 32,
			"personalized result cache size in MiB, keyed by query fingerprint + view epoch (0 = off)")
		maxBatch = flag.Int("max-batch-queries", 0,
			"max queries per batch, shared by coalesced scans and POST /api/query/batch (0 = default 64)")
		sharedSubexpr = flag.Bool("shared-subexpr", true,
			"share filter bitmaps and group-key columns across the queries of each batch scan (false = per-query evaluation, the A/B baseline)")
		perFilterSharing = flag.Bool("per-filter-sharing", true,
			"decompose batch filter sharing to per-predicate bitmaps AND-composed into set masks (false = whole-filter-set granularity, the A/B baseline)")
		packedColumns = flag.Bool("packed-columns", true,
			"execute scans against the dictionary-encoded bit-packed fact columns (word-at-a-time predicate kernels, monomorphic aggregation kernels); false = unpacked scalar path, the A/B baseline — results are identical either way")
		factShards = flag.Int("fact-shards", 0,
			"hash-partition every fact table into N shards behind the scheduler (scatter-gather scans, per-shard ingest locks); 0 or 1 = single-table path")
		queryTimeout = flag.Duration("query-timeout", 0,
			"admission deadline: a query still queued this long is dropped with an error instead of executing late (0 = no deadline)")
		artifactCacheMB = flag.Int("artifact-cache-mb", 0,
			"cross-batch artifact cache in MiB: hot filter bitmaps and roll-up key columns survive between scans, invalidated by table-version bumps (0 = off; split across shards when sharded)")
		traceSampleRate = flag.Float64("trace-sample-rate", 0,
			"query-lifecycle tracing: probability a successful query's span tree is retained for GET /api/trace/{id} (errors and timeouts are always retained; 0 = tracing off)")
		slowQuery = flag.Duration("slow-query", 0,
			"log a structured warning for any query at or above this end-to-end latency, with trace ID and stage breakdown (0 = off)")
		profileRegistrySize = flag.Int("profile-registry-size", 0,
			"heavy-query profile registry capacity: top-K query fingerprints by decay-weighted cost served at GET /api/queries/top (0 = default 128)")
		profileDecay = flag.Duration("profile-decay", 0,
			"half-life of heavy-query profile scores: a fingerprint idle this long weighs half as much in the top-K ranking (0 = default 10m)")
		tenantLabelCap = flag.Int("tenant-label-cap", 0,
			"max distinct tenant label values on /metrics and in the cost accountant; overflow tenants collapse into \"other\" (0 = default 64)")
		pprofAddr = flag.String("pprof-addr", "",
			"serve net/http/pprof on this separate address (e.g. localhost:6060; empty = off)")
		maxQueueDepth = flag.Int("max-queue-depth", 0,
			"overload threshold on admission-queue depth: at or past it, over-share tenants get HTTP 429 + Retry-After instead of queueing toward the 504 deadline (0 = shedding off)")
		targetQueueWait = flag.Duration("target-queue-wait", 0,
			"overload threshold on smoothed admission wait: past it, over-share tenants are shed with 429; set well below -query-timeout (0 = off)")
		tenantWeights = flag.String("tenant-weights", "",
			"comma-separated user=weight fair-share weights (e.g. alice=2,bob=1); unlisted tenants weigh 1")
		autoTune = flag.Bool("auto-tune", false,
			"adaptive knob tuner: auto-size the coalesce window from arrival rate and the result/artifact cache budgets from hit rates, within bounds of the configured values; every adjustment is logged")
		autoTuneInterval = flag.Duration("auto-tune-interval", 0,
			"adaptive tuner observation period (0 = default 2s)")
	)
	flag.Parse()

	cfg := sdwp.DefaultDataConfig()
	cfg.Seed = *seed
	if *cities > 0 {
		cfg.Cities = *cities
	}
	if *stores > 0 {
		cfg.Stores = *stores
	}
	if *sales > 0 {
		cfg.Sales = *sales
	}
	var warehouse *sdwp.Cube
	if *dataPath != "" {
		f, err := os.Open(*dataPath)
		if err != nil {
			log.Fatalf("open data: %v", err)
		}
		warehouse, err = cube.Read(f)
		f.Close()
		if err != nil {
			log.Fatalf("load data: %v", err)
		}
	} else {
		ds, err := sdwp.GenerateData(cfg)
		if err != nil {
			log.Fatalf("generate data: %v", err)
		}
		warehouse = ds.Cube
	}

	roles := map[string]string{}
	for _, pair := range strings.Split(*usersSpec, ",") {
		if pair == "" {
			continue
		}
		name, role, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("bad -users entry %q (want user=role)", pair)
		}
		roles[strings.TrimSpace(name)] = strings.TrimSpace(role)
	}
	users, err := sdwp.NewSalesUserStore(roles)
	if err != nil {
		log.Fatalf("user store: %v", err)
	}

	var weights map[string]float64
	for _, pair := range strings.Split(*tenantWeights, ",") {
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("bad -tenant-weights entry %q (want user=weight)", pair)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w <= 0 {
			log.Fatalf("bad -tenant-weights entry %q (weight must be a positive number)", pair)
		}
		if weights == nil {
			weights = map[string]float64{}
		}
		weights[strings.TrimSpace(name)] = w
	}

	sharedMode := sdwp.SharedSubexprOn
	if !*sharedSubexpr {
		sharedMode = sdwp.SharedSubexprOff
	}
	packedMode := sdwp.PackedColumnsOn
	if !*packedColumns {
		packedMode = sdwp.PackedColumnsOff
	}
	engine := sdwp.NewEngine(warehouse, users, sdwp.EngineOptions{
		QueryWorkers:            *workers,
		CoalesceWindow:          *coalesceWindow,
		MaxInFlightScans:        *maxInFlight,
		ResultCacheBytes:        int64(*cacheMB) << 20,
		MaxBatchQueries:         *maxBatch,
		SharedSubexpr:           sharedMode,
		DisablePerFilterSharing: !*perFilterSharing,
		PackedColumns:           packedMode,
		FactShards:              *factShards,
		QueryTimeout:            *queryTimeout,
		ArtifactCacheBytes:      int64(*artifactCacheMB) << 20,
		TraceSampleRate:         *traceSampleRate,
		SlowQueryThreshold:      *slowQuery,
		QueryCostProfiles:       *profileRegistrySize,
		QueryCostDecay:          *profileDecay,
		TenantLabelCap:          *tenantLabelCap,
		MaxQueueDepth:           *maxQueueDepth,
		TargetQueueWait:         *targetQueueWait,
		TenantWeights:           weights,
		AutoTune:                *autoTune,
		AutoTuneInterval:        *autoTuneInterval,
	})
	engine.SetParam("threshold", sdwp.Number(*threshold))

	src := sdwp.PaperRules
	if *rulesPath != "" {
		data, err := os.ReadFile(*rulesPath)
		if err != nil {
			log.Fatalf("read rules: %v", err)
		}
		src = string(data)
	}
	rules, err := engine.AddRules(src)
	if err != nil {
		log.Fatalf("rules: %v", err)
	}

	// Profile persistence: the user model accumulates interest degrees
	// across sessions; deployments keep it on disk.
	if *profiles != "" {
		if data, err := os.ReadFile(*profiles); err == nil {
			if err := json.Unmarshal(data, users); err != nil {
				log.Fatalf("load profiles: %v", err)
			}
			fmt.Printf("solapd: loaded %d user profiles from %s\n", users.Len(), *profiles)
		} else if !os.IsNotExist(err) {
			log.Fatalf("read profiles: %v", err)
		}
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigs
			engine.Close() // stop the query scheduler before persisting
			data, err := json.MarshalIndent(users, "", "  ")
			if err == nil {
				err = os.WriteFile(*profiles, data, 0o644)
			}
			if err != nil {
				log.Printf("save profiles: %v", err)
				os.Exit(1)
			}
			fmt.Printf("\nsolapd: saved %d user profiles to %s\n", users.Len(), *profiles)
			os.Exit(0)
		}()
	}

	// The profiling listener is separate from the API address (and off by
	// default) so pprof is never reachable from the API's exposure. The
	// blank net/http/pprof import registered its handlers on
	// http.DefaultServeMux, which only this listener serves.
	if *pprofAddr != "" {
		go func() {
			fmt.Printf("solapd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			log.Fatal(http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	fmt.Printf("solapd: %d stores / %d cities / %d facts, %d rules, %d users, %d fact shard(s)\n",
		cfg.Stores, cfg.Cities, warehouse.FactData("Sales").Len(), len(rules), len(roles),
		engine.FactShards())
	fmt.Printf("solapd: listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, sdwp.NewHTTPServer(engine)))
}

#!/usr/bin/env bash
# stress.sh — the race-stress and benchmark-smoke suite CI runs per
# GOMAXPROCS matrix cell (the multi-CPU cell exercises the parallelism
# single-CPU runners never did). One script instead of five copy-pasted
# workflow steps; run locally with e.g. `GOMAXPROCS=4 scripts/stress.sh`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== stress (GOMAXPROCS=${GOMAXPROCS:-default}) =="

# The query scheduler is all goroutines and channels; hammer its tests
# specifically under the race detector.
go test -race -count=3 ./internal/qsched/

# The shared-subexpression and per-filter batch paths fill cross-worker
# artifacts (predicate bitmaps, composed set masks) while views mutate
# underneath; the pooled-partial pattern additionally recycles partial
# tables through the per-fact-table pool while AddFact ingest and
# SpatialSelect churn run against the morsel-stealing scans. The Packed
# pattern adds the compressed-column kernels: packed views held across
# ingest-driven width repacks, word-at-a-time predicate fills racing the
# appenders, and the packed-vs-unpacked equivalence sweeps. CI also runs
# this whole script in an SDWP_PACKED_COLUMNS=0 cell, which flips every
# one of these scans onto the unpacked scalar path.
go test -race -count=3 -run 'SharedSubexpr|PerFilter|PooledPartial|Packed' ./internal/core/ ./internal/cube/

# The sharded executor interleaves scatter-gather scans with routed
# ingest and view selections across per-shard locks.
go test -race -count=2 -run 'Sharded' ./internal/shard/ ./internal/core/

# The telemetry layer is scraped while it is written: concurrent
# GET /metrics + GET /api/stats against in-flight sharded batches and
# AddFact ingest (lock-free histograms, the scheduler-counter collector,
# and the trace ring all under the race detector).
go test -race -count=2 -run 'MetricsScrapeUnderShardedLoad|Obs' ./internal/webapi/ ./internal/obs/

# Compile-and-run every benchmark once so they cannot bit-rot; the named
# manifest benchmarks are additionally gated by scripts/bench.sh.
go test -run '^$' -bench=. -benchtime=1x ./...

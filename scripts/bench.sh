#!/usr/bin/env bash
# bench.sh — the benchmark-regression pipeline: run the core executor
# benchmarks and emit BENCH_10.json (ns/op, allocs/op, sharing-ratio and
# pool-hit metrics) through cmd/benchjson. The manifest makes a renamed or
# deleted benchmark fail the pipeline instead of silently dropping its
# perf trajectory, and the baseline comparison fails the pipeline when a
# benchmark's allocs/op regresses past the tolerance — or when an
# ns/op-gated benchmark regresses wall time: the tracing-off mode of
# BenchmarkTraceOverhead (the telemetry subsystem's "off costs nothing"
# proof), the packed mode of BenchmarkPackedScan (the compressed column
# layer must stay fast, not just correct), the on mode of
# BenchmarkCostAccountingOverhead, and BenchmarkFairAdmissionOverhead
# (fair admission prices tenants, not queries — its ledger must stay
# noise against a real scan).
#
# Env knobs:
#   BENCHTIME  go test -benchtime value   (default 1s: duration-based, so
#              per-op numbers amortize cold-start allocation — the
#              iterations:2 artifacts of BENCH_5 hid a 1.6MB/op mirage;
#              use 1x only for a smoke pass)
#   COUNT      go test -count value       (default 1)
#   OUT        output artifact path       (default BENCH_8.json)
#   BASELINE   previous artifact to gate allocs/op against (default: the
#              highest-numbered BENCH_<n>.json other than OUT; set to ""
#              to skip the gate)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
OUT="${OUT:-BENCH_10.json}"

# Pick the baseline by the highest <n> compared numerically. (The old
# `sort -t_ -k2 -n` keyed on "<n>.json" strings, which happens to work
# for GNU sort but is locale- and suffix-fragile; extracting the bare
# number is unambiguous — BENCH_10 must outrank BENCH_9.)
if [[ -z "${BASELINE+x}" ]]; then
  BASELINE=""
  best=-1
  for f in BENCH_*.json; do
    [[ -e "$f" && "$f" != "$OUT" ]] || continue
    n="${f#BENCH_}"
    n="${n%.json}"
    [[ "$n" =~ ^[0-9]+$ ]] || continue
    if ((n > best)); then
      best=$n
      BASELINE="$f"
    fi
  done
fi

# The manifest: the benchmarks whose trajectory the repo records. The
# -bench regexp is derived from it, so one edit adds a benchmark to both
# the run and the existence gate.
MANIFEST="BenchmarkSharedSubexprBatch,BenchmarkParallelScan,BenchmarkBatchPartialPooling,BenchmarkShardedScan,BenchmarkArtifactCacheHit,BenchmarkPerFilterSharing,BenchmarkTraceOverhead,BenchmarkPackedScan,BenchmarkPackedPredicateKernel,BenchmarkCostAccountingOverhead,BenchmarkFairAdmissionOverhead"

go test -run '^$' \
  -bench "^(${MANIFEST//,/|})\$" \
  -benchtime "$BENCHTIME" -count "$COUNT" . \
  | go run ./cmd/benchjson -issue 10 -out "$OUT" -manifest "$MANIFEST" \
      -benchtime "$BENCHTIME" -count "$COUNT" \
      -nsop-gate '^(BenchmarkTraceOverhead/off|BenchmarkPackedScan/packed=true|BenchmarkCostAccountingOverhead/on|BenchmarkFairAdmissionOverhead/)' \
      ${BASELINE:+-baseline "$BASELINE"}

echo "bench.sh: wrote $OUT${BASELINE:+ (allocs/op gated against $BASELINE)}"

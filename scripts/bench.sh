#!/usr/bin/env bash
# bench.sh — the benchmark-regression pipeline: run the core executor
# benchmarks and emit BENCH_5.json (ns/op, allocs/op, sharing-ratio
# metrics) through cmd/benchjson. The manifest makes a renamed or deleted
# benchmark fail the pipeline instead of silently dropping its perf
# trajectory.
#
# Env knobs:
#   BENCHTIME  go test -benchtime value   (default 1x: a smoke pass; use
#              e.g. 2s for stable numbers)
#   COUNT      go test -count value       (default 1)
#   OUT        output artifact path       (default BENCH_5.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
COUNT="${COUNT:-1}"
OUT="${OUT:-BENCH_5.json}"

# The manifest: the benchmarks whose trajectory the repo records. The
# -bench regexp is derived from it, so one edit adds a benchmark to both
# the run and the existence gate.
MANIFEST="BenchmarkSharedSubexprBatch,BenchmarkShardedScan,BenchmarkArtifactCacheHit,BenchmarkPerFilterSharing"

go test -run '^$' \
  -bench "${MANIFEST//,/|}" \
  -benchtime "$BENCHTIME" -count "$COUNT" . \
  | go run ./cmd/benchjson -issue 5 -out "$OUT" -manifest "$MANIFEST"

echo "bench.sh: wrote $OUT"

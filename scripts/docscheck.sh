#!/usr/bin/env bash
# docscheck.sh — the docs lint: fail CI when the operator/architecture
# docs go missing or the solapd flag surface drifts away from
# docs/OPERATIONS.md. The flag list is parsed out of cmd/solapd/main.go
# itself, so adding a flag without documenting it is a one-commit CI
# failure instead of a slow divergence.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

for f in docs/OPERATIONS.md docs/ARCHITECTURE.md README.md; do
  if [[ ! -s "$f" ]]; then
    echo "docscheck: missing or empty: $f" >&2
    fail=1
  fi
done
[[ $fail -eq 0 ]] || exit 1

# Every flag solapd defines must appear in OPERATIONS.md as `-name`.
flags=$(grep -oE 'flag\.(String|Bool|Int|Int64|Float64|Duration)\("[a-z-]+"' \
  cmd/solapd/main.go | sed -E 's/.*\("([a-z-]+)"/\1/' | sort -u)
if [[ -z "$flags" ]]; then
  echo "docscheck: parsed no flags out of cmd/solapd/main.go" >&2
  exit 1
fi

for f in $flags; do
  if ! grep -q -- "\`-$f\`" docs/OPERATIONS.md; then
    echo "docscheck: solapd flag -$f is not documented in docs/OPERATIONS.md" >&2
    fail=1
  fi
done

# The README must point readers at both docs.
for link in docs/ARCHITECTURE.md docs/OPERATIONS.md; do
  if ! grep -q "$link" README.md; then
    echo "docscheck: README.md does not link $link" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  exit 1
fi
n=$(wc -w <<<"$flags")
echo "docscheck: OK ($n solapd flags documented)"

module sdwp

go 1.22

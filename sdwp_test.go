package sdwp

// Facade-level tests: everything a downstream user does through the public
// API, end to end. These double as living documentation for README's
// quickstart snippet.

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func facadeEngine(t *testing.T) (*Engine, *Dataset) {
	t.Helper()
	cfg := DefaultDataConfig()
	cfg.Cities = 20
	cfg.Stores = 100
	cfg.Customers = 50
	cfg.Sales = 2000
	ds, err := GenerateData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	users, err := NewSalesUserStore(map[string]string{
		"alice": "RegionalSalesManager",
		"bob":   "Accountant",
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(ds.Cube, users, EngineOptions{})
	e.SetParam("threshold", Number(2))
	if _, err := e.AddRules(PaperRules); err != nil {
		t.Fatal(err)
	}
	return e, ds
}

func TestFacadeQuickstartFlow(t *testing.T) {
	e, ds := facadeEngine(t)
	s, err := e.StartSession("alice", ds.CityLocs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Schema personalization visible through the facade types.
	if !s.Schema().IsSpatial("Store", "Store") {
		t.Error("schema not personalized")
	}
	// Personalized query.
	res, err := s.Query(Query{
		Fact:       "Sales",
		GroupBy:    []LevelRef{{Dimension: "Store", Level: "City"}},
		Aggregates: []MeasureAgg{{Measure: "UnitSales", Agg: SUM}},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.QueryBaseline(Query{
		Fact:       "Sales",
		Aggregates: []MeasureAgg{{Agg: COUNT}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedFacts >= base.MatchedFacts {
		t.Errorf("personalization did not restrict: %d vs %d", res.MatchedFacts, base.MatchedFacts)
	}
	// Interactive selection fires tracking rules.
	sel, err := s.SpatialSelect("GeoMD.Store.City",
		"Distance(GeoMD.Store.City.geometry, GeoMD.Airport.geometry) < 20km")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Selected) == 0 || len(sel.RulesFired) == 0 {
		t.Errorf("selection result = %+v", sel)
	}
}

func TestFacadeGeometryHelpers(t *testing.T) {
	p := Pt(-0.48, 38.34)
	if p.X != -0.48 || p.Y != 38.34 {
		t.Error("Pt constructor")
	}
	g, err := ParseWKT("POINT (-3.7 40.4)")
	if err != nil {
		t.Fatal(err)
	}
	d := HaversineKm(p, g.(Point))
	if d < 300 || d > 450 {
		t.Errorf("Alicante–Madrid = %.0f km", d)
	}
	if POINT.String() != "POINT" || LINE.String() != "LINE" ||
		POLYGON.String() != "POLYGON" || COLLECTION.String() != "COLLECTION" {
		t.Error("geometry type constants")
	}
}

func TestFacadeSchemaBuilder(t *testing.T) {
	b := NewSchemaBuilder("TinyDW")
	b.Dimension("Region").Level("Shop", "name").Level("Area", "name")
	b.Fact("Visits").Measure("Count").Uses("Region")
	md, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	geo := WrapGeo(md)
	c := NewCube(geo)
	area, err := c.AddMember("Region", "Area", "North", -1)
	if err != nil {
		t.Fatal(err)
	}
	shop, err := c.AddMember("Region", "Shop", "S1", area)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddFact("Visits", map[string]int32{"Region": shop},
		map[string]float64{"Count": 3}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(Query{
		Fact:       "Visits",
		GroupBy:    []LevelRef{{Dimension: "Region", Level: "Area"}},
		Aggregates: []MeasureAgg{{Measure: "Count", Agg: SUM}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Groups[0] != "North" || res.Rows[0].Values[0] != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestFacadeCustomProfile(t *testing.T) {
	p := NewProfile()
	if _, err := p.AddClass("Analyst", "User"); err != nil {
		t.Fatal(err)
	}
	store, err := NewUserStore(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Create("u1"); err != nil {
		t.Fatal(err)
	}
	if store.Get("u1") == nil {
		t.Error("user not stored")
	}
}

func TestFacadeRulesRoundTrip(t *testing.T) {
	rules, err := ParseRules(PaperRules)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("paper rules = %d", len(rules))
	}
	text := FormatRules(rules...)
	if !strings.Contains(text, "Rule:5kmStores") {
		t.Errorf("formatted rules missing 5kmStores:\n%s", text)
	}
	back, err := ParseRules(text)
	if err != nil || len(back) != 4 {
		t.Fatalf("canonical form reparse: %v", err)
	}
}

func TestFacadeHTTPServer(t *testing.T) {
	e, _ := facadeEngine(t)
	srv := httptest.NewServer(NewHTTPServer(e))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %s", resp.Status)
	}
}

func TestFacadeParamValues(t *testing.T) {
	if Number(3).Num != 3 {
		t.Error("Number wrapper")
	}
	if String("x").Str != "x" {
		t.Error("String wrapper")
	}
	if SalesSchema().MD.Fact("Sales") == nil {
		t.Error("SalesSchema")
	}
	if p, err := Fig4Profile(); err != nil || p.UserClass() != "DecisionMaker" {
		t.Error("Fig4Profile")
	}
}
